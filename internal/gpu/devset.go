package gpu

import (
	"fmt"
	"sync"
	"time"

	"flbooster/internal/obs"
)

// Multi-device sharding (DESIGN.md §15): a DeviceSet is D simulated devices
// — each with its own clock, fault injector, health machine, and stream
// pair — behind a shard scheduler. Vector HE ops split into contiguous
// shards, dispatch across the devices, and merge their per-device sim
// clocks into one measured parallel span: the max over devices per wave,
// never the sum, so a device idling while its peers finish is not charged.
// When the fault layer degrades or kills a device mid-batch, its unfinished
// shards are re-queued onto the healthy devices (work stealing), subdivided
// so the rework is itself parallel, and the migration is charged to the
// cost model.

// MaxDevices bounds the device count a set accepts — a sanity rail for the
// CLI flags, not a simulator limit.
const MaxDevices = 64

// Shard is one contiguous item range [Lo, Hi) of a sharded vector op.
type Shard struct {
	Lo, Hi int
}

// Len returns the shard's item count.
func (s Shard) Len() int { return s.Hi - s.Lo }

// SplitShards splits n items into at most `parts` contiguous, near-equal,
// non-empty shards covering [0, n) exactly. Fewer than `parts` shards come
// back when n < parts (never a zero-length shard); n ≤ 0 or parts ≤ 0 yields
// nil.
func SplitShards(n, parts int) []Shard {
	if n <= 0 || parts <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	out := make([]Shard, parts)
	lo := 0
	for i := range out {
		size := n / parts
		if i < n%parts {
			size++
		}
		out[i] = Shard{Lo: lo, Hi: lo + size}
		lo += size
	}
	return out
}

// SetStats aggregates the scheduler's activity. Per-device kernel/copy/fault
// counters live on the member devices (DeviceSet.Device(i).Stats()); this
// records what the set adds on top: shard traffic, steals, and the merged
// clocks.
type SetStats struct {
	// Ops counts sharded vector ops run through the set.
	Ops int64
	// Shards counts shards dispatched to devices, rework included.
	Shards int64
	// Steals counts shards re-queued from a faulted device onto healthy ones.
	Steals int64
	// HostShards counts shards served by the host fallback after every device
	// was excluded.
	HostShards int64
	// RebalanceSim is the modelled time the rework waves added to the
	// parallel span — the price of migration, included in SimParallelTime.
	RebalanceSim time.Duration
	// SimParallelTime is the measured parallel span: per wave, the maximum
	// modelled-time delta across the participating devices (overlapped view,
	// so device pipelines keep their stream credit).
	SimParallelTime time.Duration
	// SimSequentialTime is the same work priced sequentially — the sum of
	// every device's delta. SimParallelTime / SimSequentialTime is the
	// measured scaling efficiency.
	SimSequentialTime time.Duration
	// HostSim is the wall time of host-fallback shards, charged to the
	// set's clock (degraded-mode cost, like CheckedEngine fallback).
	HostSim time.Duration
	// SimPrecomputeTime holds set work reclassified as offline precompute
	// (nonce-pool refills) by BeginOffline.
	SimPrecomputeTime time.Duration
}

// DeviceSet is a fleet of simulated devices behind a shard scheduler.
type DeviceSet struct {
	devs []*Device

	mu    sync.Mutex
	stats SetStats

	// Peer-to-peer topology: when a rate is configured, a stolen shard's
	// input migrates over the modelled device interconnect (charged to the
	// stealing device); with the zero value migration repays only the H2D
	// re-upload its rerun performs.
	p2pLatencySec  float64
	p2pBytesPerSec float64
}

// NewDeviceSet builds n devices from one configuration. Each device gets its
// own resource manager, clock, and health machine, plus a stable device
// label ("dev0"…) that tags its trace spans. Fault injectors are attached
// per device by the caller — each device fails independently.
func NewDeviceSet(cfg Config, fineRM bool, n int) (*DeviceSet, error) {
	if n < 1 {
		return nil, fmt.Errorf("gpu: device set needs at least 1 device, got %d", n)
	}
	if n > MaxDevices {
		return nil, fmt.Errorf("gpu: device set of %d exceeds MaxDevices %d", n, MaxDevices)
	}
	devs := make([]*Device, n)
	for i := range devs {
		d, err := New(cfg, fineRM)
		if err != nil {
			return nil, err
		}
		d.SetDeviceLabel(fmt.Sprintf("dev%d", i))
		devs[i] = d
	}
	return &DeviceSet{devs: devs}, nil
}

// Size returns the device count.
func (s *DeviceSet) Size() int { return len(s.devs) }

// Device returns member i.
func (s *DeviceSet) Device(i int) *Device { return s.devs[i] }

// Devices returns the member devices (shared slice; do not mutate).
func (s *DeviceSet) Devices() []*Device { return s.devs }

// SetP2P configures the peer-to-peer interconnect used to price shard
// migration (NVLink-style: per-transfer latency plus bytes/sec). Zero rates
// disable the charge.
func (s *DeviceSet) SetP2P(latencySec, bytesPerSec float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.p2pLatencySec = latencySec
	s.p2pBytesPerSec = bytesPerSec
}

// P2PTransferTime models moving n bytes between two member devices.
func (s *DeviceSet) P2PTransferTime(n int64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p2pTimeLocked(n)
}

func (s *DeviceSet) p2pTimeLocked(n int64) time.Duration {
	if s.p2pBytesPerSec <= 0 {
		return 0
	}
	sec := s.p2pLatencySec + float64(n)/s.p2pBytesPerSec
	return time.Duration(sec * float64(time.Second))
}

// Stats returns a snapshot of the set counters.
func (s *DeviceSet) Stats() SetStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// SimTime is the set's modelled online clock: the merged parallel span plus
// any host-fallback time. It is the multi-device analogue of
// Device.Stats().SimTime() and what fl's cost accounting reads.
func (s *DeviceSet) SimTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.SimParallelTime + s.stats.HostSim
}

// SimNow implements the ghe.SimClock shape without the import: the current
// reading of the set's online clock.
func (s *DeviceSet) SimNow() time.Duration { return s.SimTime() }

// ResetStats zeroes the set counters and every member device's counters.
// Health states survive, exactly as on a single device.
func (s *DeviceSet) ResetStats() {
	for _, d := range s.devs {
		d.ResetStats()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = SetStats{}
}

// SetRecorder attaches a span recorder to every member device under one
// trace party; spans stay distinguishable by their device label.
func (s *DeviceSet) SetRecorder(rec *obs.Recorder, party string) {
	for _, d := range s.devs {
		d.SetRecorder(rec, party)
	}
}

// SetHealthPolicy replaces the failure thresholds on every member device.
func (s *DeviceSet) SetHealthPolicy(p HealthPolicy) {
	for _, d := range s.devs {
		d.SetHealthPolicy(p)
	}
}

// AvgUtilization is the mean SM utilization across the member devices that
// launched anything.
func (s *DeviceSet) AvgUtilization() float64 {
	sum, n := 0.0, 0
	for _, d := range s.devs {
		st := d.Stats()
		if st.UtilizationCount > 0 {
			sum += st.AvgUtilization()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BeginOffline marks the set's clocks ahead of offline work (nonce-pool
// prefill). The returned func reclassifies everything accrued since — on
// every member device and on the set's merged clocks — into precompute
// time, returning the parallel-view duration moved. The caller must bracket
// the work single-threadedly, like Device.ReclassifyPrecompute.
func (s *DeviceSet) BeginOffline() func() time.Duration {
	marks := make([]Stats, len(s.devs))
	for i, d := range s.devs {
		marks[i] = d.Stats()
	}
	s.mu.Lock()
	mark := s.stats
	s.mu.Unlock()
	return func() time.Duration {
		for i, d := range s.devs {
			d.ReclassifyPrecompute(marks[i])
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		moved := (s.stats.SimParallelTime - mark.SimParallelTime) + (s.stats.HostSim - mark.HostSim)
		if moved < 0 {
			moved = 0
		}
		s.stats.SimParallelTime = mark.SimParallelTime
		s.stats.SimSequentialTime = mark.SimSequentialTime
		s.stats.HostSim = mark.HostSim
		s.stats.RebalanceSim = mark.RebalanceSim
		s.stats.SimPrecomputeTime += moved
		return moved
	}
}

// ShardOp is one sharded vector operation.
type ShardOp struct {
	// Name labels the op in errors and diagnostics.
	Name string
	// Items is the total item count to cover.
	Items int
	// BytesPerItem sizes a shard's input for migration pricing over the
	// peer-to-peer topology; zero skips the charge.
	BytesPerItem int64
	// Run executes one shard on member device devID, writing results for
	// exactly [sh.Lo, sh.Hi). It must be safe to call concurrently for
	// disjoint shards on distinct devices. A typed *KernelError re-queues
	// the shard; any other error aborts the op.
	Run func(devID int, sh Shard) error
	// Host executes one shard on the host — the last-resort fallback once
	// every device is excluded. Nil surfaces the final device error instead.
	Host func(sh Shard) error
}

// devOutcome is one device's result for a wave: the shards it could not
// finish (typed failures re-queue them) or a fatal non-device error.
type devOutcome struct {
	failed []Shard
	fatal  error
}

// Run executes op across the set: split into one shard per eligible device,
// run the wave in parallel (each device walks its shards in order on its
// own goroutine), then re-queue anything a faulted device left behind onto
// the remaining devices — subdivided, so stolen work is itself parallel —
// until the op completes, falling back to the host when no device remains.
//
// Accounting merges the per-device clocks into a measured parallel span:
// each wave contributes the maximum modelled-time delta across its
// participants (overlapped view, so per-device stream pipelines keep their
// credit) to SimParallelTime and the sum of deltas to SimSequentialTime.
// Rework waves additionally accrue RebalanceSim; migrated shards pay the
// peer-to-peer transfer of their input when a P2P rate is configured.
//
// Bit-exactness: shards are contiguous item ranges and Run writes only its
// own range, so any schedule — including mid-batch death and rework — yields
// the byte-identical result of the sequential op. Ops serialize on the set;
// one op at a time owns every member clock.
func (s *DeviceSet) Run(op ShardOp) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Ops++
	if op.Items <= 0 {
		return nil
	}

	excluded := make([]bool, len(s.devs))
	eligible := func() []int {
		var ids []int
		for i, d := range s.devs {
			if !excluded[i] && d.Health() != DeviceFailed {
				ids = append(ids, i)
			}
		}
		return ids
	}

	// assignment maps device → its queued shards for the current wave.
	assignment := make(map[int][]Shard)
	elig := eligible()
	pending := []Shard{{Lo: 0, Hi: op.Items}}
	var lastErr error

	for wave := 0; ; wave++ {
		// Distribute the pending ranges: each splits across every eligible
		// device, so wave 0 is the even initial split and rework waves spread
		// a dead device's remainder instead of serializing it on one peer.
		if len(elig) == 0 {
			return s.runHostLocked(op, pending, lastErr)
		}
		migration := make(map[int]time.Duration)
		for _, rng := range pending {
			pieces := SplitShards(rng.Len(), len(elig))
			for j, p := range pieces {
				dev := elig[j%len(elig)]
				sh := Shard{Lo: rng.Lo + p.Lo, Hi: rng.Lo + p.Hi}
				assignment[dev] = append(assignment[dev], sh)
				s.stats.Shards++
				if wave > 0 {
					s.stats.Steals++
					// The faulted device's staged input migrates to the stealer
					// over the interconnect; charged inside the wave below so
					// the merged span includes it.
					migration[dev] += s.p2pTimeLocked(int64(sh.Len()) * op.BytesPerItem)
				}
			}
		}
		pending = pending[:0]

		// One wave: every assigned device runs its shards in order on its own
		// goroutine; per-device clocks advance independently.
		base := make(map[int]time.Duration, len(assignment))
		for dev := range assignment {
			base[dev] = s.devs[dev].Stats().SimTimeOverlapped()
		}
		for dev, dur := range migration {
			s.devs[dev].ChargeFaultTime(dur)
		}
		outcomes := make(map[int]*devOutcome, len(assignment))
		var wg sync.WaitGroup
		var omu sync.Mutex
		for dev, shards := range assignment {
			wg.Add(1)
			go func(dev int, shards []Shard) {
				defer wg.Done()
				out := &devOutcome{}
				for k, sh := range shards {
					if err := op.Run(dev, sh); err != nil {
						if !IsKernelError(err) {
							out.fatal = err
						} else {
							out.failed = append([]Shard{}, shards[k:]...)
							out.fatal = nil
							omu.Lock()
							outcomes[dev] = out
							omu.Unlock()
							return
						}
						omu.Lock()
						outcomes[dev] = out
						omu.Unlock()
						return
					}
				}
				omu.Lock()
				outcomes[dev] = out
				omu.Unlock()
			}(dev, shards)
		}
		wg.Wait()

		// Merge the wave's clocks: parallel span is the slowest device's
		// delta, never the sum — an idle device charges nothing.
		var span, seq time.Duration
		for dev := range assignment {
			delta := s.devs[dev].Stats().SimTimeOverlapped() - base[dev]
			if delta < 0 {
				delta = 0
			}
			seq += delta
			if delta > span {
				span = delta
			}
		}
		s.stats.SimParallelTime += span
		s.stats.SimSequentialTime += seq
		if wave > 0 {
			s.stats.RebalanceSim += span
		}

		for dev := range assignment {
			delete(assignment, dev)
		}
		for dev, out := range outcomes {
			if out.fatal != nil {
				return fmt.Errorf("gpu: sharded %s on dev%d: %w", op.Name, dev, out.fatal)
			}
			if len(out.failed) > 0 {
				// This device failed a shard during this op: exclude it from
				// the rework so a flaky-but-alive device cannot reabsorb work
				// it keeps failing.
				excluded[dev] = true
				pending = append(pending, out.failed...)
				if lastErr == nil {
					lastErr = fmt.Errorf("gpu: sharded %s: dev%d faulted", op.Name, dev)
				}
			}
		}
		if len(pending) == 0 {
			return nil
		}
		elig = eligible()
	}
}

// runHostLocked serves the remaining ranges on the host after every device
// was excluded, charging the wall time as degraded-mode cost. Callers hold
// s.mu.
func (s *DeviceSet) runHostLocked(op ShardOp, pending []Shard, lastErr error) error {
	if op.Host == nil {
		if lastErr == nil {
			lastErr = fmt.Errorf("gpu: sharded %s: no eligible device", op.Name)
		}
		return lastErr
	}
	start := time.Now()
	for _, sh := range pending {
		if err := op.Host(sh); err != nil {
			return fmt.Errorf("gpu: sharded %s host fallback: %w", op.Name, err)
		}
		s.stats.HostShards++
	}
	s.stats.HostSim += time.Since(start)
	return nil
}

// PublishMetrics snapshots the set into a metrics registry: aggregate device
// counters under prefix (sums over members, so the single-device dashboards
// keep working), per-device rows under prefix+".dev<i>", and the scheduler
// counters (devset_shards, devset_steals, devset_rebalance_ns, the merged
// clocks) — the per-device observability ReconcileObs cross-checks.
func (s *DeviceSet) PublishMetrics(reg *obs.Registry, prefix string) {
	agg := s.StatsSum()
	publishDeviceStats(reg, prefix, agg)
	for i, d := range s.devs {
		d.PublishMetrics(reg, fmt.Sprintf("%s.dev%d", prefix, i))
	}
	st := s.Stats()
	reg.Set(prefix+".devset_devices", int64(len(s.devs)))
	reg.Set(prefix+".devset_ops", st.Ops)
	reg.Set(prefix+".devset_shards", st.Shards)
	reg.Set(prefix+".devset_steals", st.Steals)
	reg.Set(prefix+".devset_host_shards", st.HostShards)
	reg.Set(prefix+".devset_rebalance_ns", int64(st.RebalanceSim))
	reg.Set(prefix+".devset_parallel_ns", int64(st.SimParallelTime))
	reg.Set(prefix+".devset_sequential_ns", int64(st.SimSequentialTime))
	reg.Set(prefix+".devset_host_sim_ns", int64(st.HostSim))
	reg.Set(prefix+".devset_precompute_ns", int64(st.SimPrecomputeTime))
}

// StatsSum aggregates the member devices' counters: additive fields sum,
// utilization averages across launching devices, and health reports the
// worst member state.
func (s *DeviceSet) StatsSum() Stats {
	var agg Stats
	agg.Health = DeviceHealthy
	for _, d := range s.devs {
		st := d.Stats()
		agg.KernelLaunches += st.KernelLaunches
		agg.ThreadsExecuted += st.ThreadsExecuted
		agg.WarpsExecuted += st.WarpsExecuted
		agg.BytesHostToDev += st.BytesHostToDev
		agg.BytesDevToHost += st.BytesDevToHost
		agg.SimTransferTime += st.SimTransferTime
		agg.SimComputeTime += st.SimComputeTime
		agg.SimFaultTime += st.SimFaultTime
		agg.SimPrecomputeTime += st.SimPrecomputeTime
		agg.WallKernelTime += st.WallKernelTime
		agg.UtilizationSum += st.UtilizationSum
		agg.UtilizationCount += st.UtilizationCount
		agg.SimStreamTime += st.SimStreamTime
		agg.SimStreamSeqTime += st.SimStreamSeqTime
		agg.StreamChunks += st.StreamChunks
		agg.StreamOps += st.StreamOps
		agg.LaunchFailures += st.LaunchFailures
		agg.WatchdogTrips += st.WatchdogTrips
		agg.FaultAborts += st.FaultAborts
		agg.FaultCorruptions += st.FaultCorruptions
		agg.FaultStalls += st.FaultStalls
		agg.FaultOOMs += st.FaultOOMs
		if healthRank(st.Health) > healthRank(agg.Health) {
			agg.Health = st.Health
		}
		if st.ConsecutiveFailures > agg.ConsecutiveFailures {
			agg.ConsecutiveFailures = st.ConsecutiveFailures
		}
	}
	return agg
}
