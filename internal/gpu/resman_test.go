package gpu

import (
	"strings"
	"testing"
)

// Boundary cases of the resource manager and the launch validation path
// (DESIGN.md §7 panic audit: misconfiguration is an error, never a crash or
// silent mis-accounting).

func TestLaunchZeroItemsNotCounted(t *testing.T) {
	d := MustNew(SmallTestDevice(), true)
	occ, err := d.Launch(Kernel{Name: "empty", Items: 0, RegsPerThread: 16}, func(int) {
		t.Fatal("kernel body must not run for zero items")
	})
	if err != nil || occ != 0 {
		t.Fatalf("zero-item launch: occ %v, err %v", occ, err)
	}
	if st := d.Stats(); st.KernelLaunches != 0 {
		t.Fatalf("zero-item launch must not count: %+v", st)
	}
}

func TestLaunchNegativeItems(t *testing.T) {
	d := MustNew(SmallTestDevice(), true)
	if _, err := d.Launch(Kernel{Name: "neg", Items: -1}, func(int) {}); err == nil {
		t.Fatal("negative item count must fail")
	}
}

func TestLaunchRegsExceedHardwareCap(t *testing.T) {
	cfg := SmallTestDevice()
	d := MustNew(cfg, true)
	k := Kernel{Name: "greedy", Items: 4, RegsPerThread: cfg.MaxRegistersPerThread + 1}
	_, err := d.Launch(k, func(int) {})
	if err == nil || !strings.Contains(err.Error(), "regs/thread") {
		t.Fatalf("over-cap register demand must fail with the cap error, got %v", err)
	}
	if st := d.Stats(); st.KernelLaunches != 0 || st.LaunchFailures != 0 {
		// A rejected misconfiguration is a caller error, not a device fault.
		t.Fatalf("rejected launch must not touch fault accounting: %+v", st)
	}
}

// TestOccupancyRegisterFloor: a kernel whose register demand exceeds what the
// register file can hold for even one block still reports the one-warp floor
// utilization rather than zero or a panic.
func TestOccupancyRegisterFloor(t *testing.T) {
	cfg := SmallTestDevice() // 4096 regs/SM, 64 threads/SM, warp 8
	rm := NewResourceManager(cfg, true)
	// 128 regs × block of 64 threads = 8192 > 4096: no whole block fits.
	floor := float64(cfg.WarpSize) / float64(cfg.MaxThreadsPerSM)
	if occ := rm.Occupancy(64, cfg.MaxRegistersPerThread, 0); occ != floor {
		t.Fatalf("occupancy %v, want one-warp floor %v", occ, floor)
	}
	if occ := rm.Occupancy(0, 1, 0); occ != 0 {
		t.Fatalf("zero block size must report zero occupancy, got %v", occ)
	}
	// Occupancy never exceeds 1 even for tiny register demands.
	if occ := rm.Occupancy(32, 0, 0); occ <= 0 || occ > 1 {
		t.Fatalf("occupancy out of range: %v", occ)
	}
}

func TestPickBlockSizeBounds(t *testing.T) {
	cfg := SmallTestDevice()
	fine := NewResourceManager(cfg, true)
	if bs := fine.PickBlockSize(0, 8, 0); bs < 32 {
		t.Fatalf("zero tasks must still yield a valid block size, got %d", bs)
	}
	coarse := NewResourceManager(cfg, false)
	if bs := coarse.PickBlockSize(1000, 8, 0); bs != cfg.MaxThreadsPerSM {
		// FixedBlockSize 1024 clamps to the SM capacity of the test device.
		t.Fatalf("coarse block size %d, want SM clamp %d", bs, cfg.MaxThreadsPerSM)
	}
}

// TestAllocExhaustion: exhausting the memory table is an error that leaves
// the accounting untouched; freeing restores allocatability via reuse.
func TestAllocExhaustion(t *testing.T) {
	cfg := SmallTestDevice() // 1 MiB of device memory
	rm := NewResourceManager(cfg, true)
	total := cfg.GlobalMemBytes
	buf, err := rm.Alloc(total)
	if err != nil {
		t.Fatal(err)
	}
	if rm.FreeBytes() != 0 || rm.MemoryInUse() != total {
		t.Fatalf("accounting after full alloc: free %d, used %d", rm.FreeBytes(), rm.MemoryInUse())
	}
	statsBefore := rm.Stats()
	if _, err := rm.Alloc(1); err == nil {
		t.Fatal("alloc from an exhausted table must fail")
	}
	if rm.FreeBytes() != 0 || rm.MemoryInUse() != total || rm.Stats() != statsBefore {
		t.Fatalf("failed alloc disturbed accounting: free %d, used %d", rm.FreeBytes(), rm.MemoryInUse())
	}
	if err := buf.Free(); err != nil {
		t.Fatal(err)
	}
	if rm.FreeBytes() != total || rm.MemoryInUse() != 0 {
		t.Fatalf("accounting after free: free %d, used %d", rm.FreeBytes(), rm.MemoryInUse())
	}
	// The freed region is reused, not re-allocated.
	if _, err := rm.Alloc(total / 2); err != nil {
		t.Fatal(err)
	}
	if st := rm.Stats(); st.Reuses != 1 {
		t.Fatalf("want one reuse, got %+v", st)
	}
	// Invalid sizes are rejected outright.
	if _, err := rm.Alloc(0); err == nil {
		t.Fatal("zero-size alloc must fail")
	}
	if _, err := rm.Alloc(-5); err == nil {
		t.Fatal("negative alloc must fail")
	}
}

func TestAcquireRegistersBounds(t *testing.T) {
	cfg := SmallTestDevice()
	rm := NewResourceManager(cfg, true)
	total := cfg.RegistersPerSM * cfg.SMs
	if !rm.AcquireRegisters(total) {
		t.Fatal("acquiring the whole register file must succeed")
	}
	if rm.AcquireRegisters(1) {
		t.Fatal("over-acquiring registers must fail")
	}
	rm.ReleaseRegisters(total)
	if !rm.AcquireRegisters(1) {
		t.Fatal("registers not returned after release")
	}
	// Releasing more than acquired clamps at zero rather than going negative.
	rm.ReleaseRegisters(1 << 30)
	if !rm.AcquireRegisters(total) {
		t.Fatal("clamped release corrupted the register pool")
	}
}
