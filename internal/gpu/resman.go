package gpu

import (
	"fmt"
	"sort"
	"sync"
)

// ResourceManager implements the paper's GPU resource manager (§IV-A2): it
// keeps a table of common block sizes and picks the one that maximizes SM
// occupancy for a kernel's register and shared-memory demands, tracks device
// memory through an address-marked allocation table so buffers are reused
// instead of re-allocated, accounts the register file, and decides how
// divergent branches execute (combined per warp vs. split, which doubles
// register pressure).
type ResourceManager struct {
	cfg Config

	mu         sync.Mutex
	blockSizes []int       // the "common block sizes" table
	regions    []memRegion // device memory table, sorted by addr
	nextAddr   int64       // high-water mark for fresh regions
	regsInUse  int         // registers currently reserved across SMs

	// Policy switches: Fine is the paper's manager; coarse allocation (fixed
	// block size, no branch combining) models HAFLO's simpler scheme.
	Fine           bool
	FixedBlockSize int // used when !Fine

	stats RMStats
}

// RMStats exposes resource-manager counters for the utilization experiments.
type RMStats struct {
	Allocs        int64 // fresh region creations
	Reuses        int64 // allocations satisfied from the table
	Frees         int64
	BranchCombine int64 // divergent branches executed as a whole warp
	BranchSplit   int64 // divergent branches that split the warp
}

// memRegion is one entry in the device memory table.
type memRegion struct {
	addr     int64
	size     int64
	occupied bool
}

// Buffer is a device allocation handle.
type Buffer struct {
	Addr int64
	Size int64
	rm   *ResourceManager
}

// NewResourceManager builds a manager for the device config. fine selects
// the paper's fine-grained policy; otherwise the manager behaves like a
// coarse allocator with a fixed block size of 1024 threads.
func NewResourceManager(cfg Config, fine bool) *ResourceManager {
	return &ResourceManager{
		cfg:            cfg,
		blockSizes:     []int{32, 64, 128, 256, 512, 1024},
		Fine:           fine,
		FixedBlockSize: 1024,
	}
}

// Stats returns a snapshot of the manager's counters.
func (rm *ResourceManager) Stats() RMStats {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return rm.stats
}

// Occupancy computes the fraction of an SM's thread slots a kernel with the
// given per-thread register count, per-block shared memory, and block size
// can keep resident. This is the standard CUDA occupancy calculation
// restricted to the three limits the paper's manager balances.
func (rm *ResourceManager) Occupancy(blockSize, regsPerThread, sharedPerBlock int) float64 {
	if blockSize <= 0 {
		return 0
	}
	if regsPerThread < 1 {
		regsPerThread = 1
	}
	blocksByThreads := rm.cfg.MaxThreadsPerSM / blockSize
	blocksByRegs := rm.cfg.RegistersPerSM / (regsPerThread * blockSize)
	blocksByShared := rm.cfg.MaxThreadsPerSM // no shared demand → no limit
	if sharedPerBlock > 0 {
		blocksByShared = rm.cfg.SharedMemPerSM / sharedPerBlock
	}
	blocks := blocksByThreads
	if blocksByRegs < blocks {
		blocks = blocksByRegs
	}
	if blocksByShared < blocks {
		blocks = blocksByShared
	}
	if blocks <= 0 {
		// The block does not fit as a whole; the SM still makes forward
		// progress one warp at a time, which is the floor utilization.
		return float64(rm.cfg.WarpSize) / float64(rm.cfg.MaxThreadsPerSM)
	}
	resident := blocks * blockSize
	if resident > rm.cfg.MaxThreadsPerSM {
		resident = rm.cfg.MaxThreadsPerSM
	}
	return float64(resident) / float64(rm.cfg.MaxThreadsPerSM)
}

// PickBlockSize chooses a block size for a kernel over `tasks` independent
// work items. The fine policy scans the block-size table for the best
// occupancy (breaking ties toward larger blocks, then clamps so small task
// counts still spread across SMs); the coarse policy returns the fixed size.
func (rm *ResourceManager) PickBlockSize(tasks, regsPerThread, sharedPerBlock int) int {
	if !rm.Fine {
		if rm.FixedBlockSize > rm.cfg.MaxThreadsPerSM {
			return rm.cfg.MaxThreadsPerSM
		}
		return rm.FixedBlockSize
	}
	best, bestOcc := rm.blockSizes[0], -1.0
	for _, bs := range rm.blockSizes {
		occ := rm.Occupancy(bs, regsPerThread, sharedPerBlock)
		if occ >= bestOcc {
			best, bestOcc = bs, occ
		}
	}
	// With few tasks, shrink the block so all SMs receive work.
	for best > rm.blockSizes[0] && tasks > 0 && (tasks+best-1)/best < rm.cfg.SMs {
		best /= 2
	}
	if best < rm.blockSizes[0] {
		best = rm.blockSizes[0]
	}
	return best
}

// Alloc reserves a device buffer of the given size, reusing a free region of
// sufficient size from the memory table when one exists (the paper's
// "marks the allocated GPU memory addresses to reduce memory allocation
// costs"). It fails when device memory is exhausted.
func (rm *ResourceManager) Alloc(size int64) (Buffer, error) {
	if size <= 0 {
		return Buffer{}, fmt.Errorf("gpu: Alloc size must be positive, got %d", size)
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	// First fit over free regions: smallest free region that fits.
	bestIdx := -1
	for i, r := range rm.regions {
		if !r.occupied && r.size >= size {
			if bestIdx < 0 || r.size < rm.regions[bestIdx].size {
				bestIdx = i
			}
		}
	}
	if bestIdx >= 0 {
		rm.regions[bestIdx].occupied = true
		rm.stats.Reuses++
		return Buffer{Addr: rm.regions[bestIdx].addr, Size: rm.regions[bestIdx].size, rm: rm}, nil
	}
	if rm.nextAddr+size > rm.cfg.GlobalMemBytes {
		return Buffer{}, fmt.Errorf("gpu: out of device memory (%d requested, %d free)",
			size, rm.cfg.GlobalMemBytes-rm.nextAddr)
	}
	buf := Buffer{Addr: rm.nextAddr, Size: size, rm: rm}
	rm.regions = append(rm.regions, memRegion{addr: buf.Addr, size: size, occupied: true})
	sort.Slice(rm.regions, func(i, j int) bool { return rm.regions[i].addr < rm.regions[j].addr })
	rm.nextAddr += size
	rm.stats.Allocs++
	return buf, nil
}

// Free marks the buffer's region available for reuse. Double frees are
// reported as errors rather than corrupting the table.
func (b Buffer) Free() error {
	if b.rm == nil {
		return fmt.Errorf("gpu: Free of zero Buffer")
	}
	b.rm.mu.Lock()
	defer b.rm.mu.Unlock()
	for i := range b.rm.regions {
		if b.rm.regions[i].addr == b.Addr {
			if !b.rm.regions[i].occupied {
				return fmt.Errorf("gpu: double free at addr %d", b.Addr)
			}
			b.rm.regions[i].occupied = false
			b.rm.stats.Frees++
			return nil
		}
	}
	return fmt.Errorf("gpu: Free of unknown addr %d", b.Addr)
}

// FreeBytes returns the device memory an allocation could still claim:
// untouched space above the high-water mark plus every free region in the
// table.
func (rm *ResourceManager) FreeBytes() int64 {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	free := rm.cfg.GlobalMemBytes - rm.nextAddr
	for _, r := range rm.regions {
		if !r.occupied {
			free += r.size
		}
	}
	return free
}

// MemoryInUse returns the number of occupied bytes in the memory table.
func (rm *ResourceManager) MemoryInUse() int64 {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	var used int64
	for _, r := range rm.regions {
		if r.occupied {
			used += r.size
		}
	}
	return used
}

// AcquireRegisters reserves n registers across the device's register files,
// reporting false when the kernel would not fit. Callers release with
// ReleaseRegisters.
func (rm *ResourceManager) AcquireRegisters(n int) bool {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	total := rm.cfg.RegistersPerSM * rm.cfg.SMs
	if rm.regsInUse+n > total {
		return false
	}
	rm.regsInUse += n
	return true
}

// ReleaseRegisters returns registers to the pool.
func (rm *ResourceManager) ReleaseRegisters(n int) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	rm.regsInUse -= n
	if rm.regsInUse < 0 {
		rm.regsInUse = 0
	}
}

// BranchCost models a divergent branch taken by divergentLanes of a warp.
// The fine policy combines the branch (whole warp executes both sides:
// cost factor 2, no extra registers). The coarse policy splits the warp,
// which costs a factor proportional to the number of divergent groups and
// doubles register pressure — the paper's "double or even several times the
// number of registers". It returns the execution cost multiplier and the
// register multiplier.
func (rm *ResourceManager) BranchCost(divergentLanes int) (execFactor, regFactor float64) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if divergentLanes <= 0 {
		return 1, 1
	}
	if rm.Fine {
		rm.stats.BranchCombine++
		return 2, 1
	}
	rm.stats.BranchSplit++
	groups := 2.0
	if divergentLanes > rm.cfg.WarpSize/2 {
		groups = 4.0
	}
	return groups, 2
}
