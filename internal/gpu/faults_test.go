package gpu

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// noopKernel is a small poisonable launch for fault tests.
func noopKernel(items int) (Kernel, func(int)) {
	out := make([]int, items)
	k := Kernel{
		Name:          "test_kernel",
		Items:         items,
		RegsPerThread: 16,
		WordOps:       4,
		Poison:        func(item int) { out[item]++ },
	}
	return k, func(i int) { out[i] = i }
}

// faultRun drives `launches` launches against a fresh device with injection
// enabled and returns the injector and device counters.
func faultRun(t *testing.T, seed uint64) (FaultStats, Stats) {
	t.Helper()
	d := MustNew(SmallTestDevice(), true)
	// Keep the device alive for the whole run so every launch consults the
	// injector; health transitions are exercised separately below.
	d.SetHealthPolicy(HealthPolicy{DegradeAfter: 1, FailAfter: 1 << 30})
	d.SetFaultInjector(NewFaultInjector(FaultConfig{
		Seed:        seed,
		AbortProb:   0.15,
		CorruptProb: 0.15,
		OOMProb:     0.15,
	}))
	for i := 0; i < 200; i++ {
		k, fn := noopKernel(8)
		_, _ = d.Launch(k, fn)
	}
	return d.Injector().Stats(), d.Stats()
}

// TestFaultInjectionDeterministic is the acceptance criterion: the same seed
// must produce the identical fault pattern across two runs.
func TestFaultInjectionDeterministic(t *testing.T) {
	fi1, ds1 := faultRun(t, 42)
	fi2, ds2 := faultRun(t, 42)
	if fi1 != fi2 {
		t.Fatalf("injector stats diverged for one seed:\n%+v\n%+v", fi1, fi2)
	}
	if fi1.Total() == 0 {
		t.Fatalf("expected injected faults, got none: %+v", fi1)
	}
	if ds1.LaunchFailures != ds2.LaunchFailures ||
		ds1.FaultAborts != ds2.FaultAborts ||
		ds1.FaultOOMs != ds2.FaultOOMs ||
		ds1.KernelLaunches != ds2.KernelLaunches {
		t.Fatalf("device fault counters diverged for one seed:\n%+v\n%+v", ds1, ds2)
	}
	fi3, _ := faultRun(t, 43)
	if fi1 == fi3 {
		t.Fatal("different seeds produced the identical fault pattern")
	}
}

func TestAbortFault(t *testing.T) {
	d := MustNew(SmallTestDevice(), true)
	d.SetFaultInjector(NewFaultInjector(FaultConfig{Seed: 1, AbortProb: 1}))
	k, fn := noopKernel(4)
	_, err := d.Launch(k, fn)
	var kerr *KernelError
	if !errors.As(err, &kerr) || kerr.Kind != FaultAbort {
		t.Fatalf("want abort KernelError, got %v", err)
	}
	if kerr.Kernel != "test_kernel" || kerr.Attempt != 1 {
		t.Fatalf("bad error metadata: %+v", kerr)
	}
	st := d.Stats()
	if st.LaunchFailures != 1 || st.FaultAborts != 1 || st.KernelLaunches != 0 {
		t.Fatalf("abort accounting wrong: %+v", st)
	}
}

// TestWatchdogCancelsInjectedStall arms the watchdog and injects a stall: the
// launch must come back as a stall KernelError within the deadline, charging
// the watchdog window to the fault clock.
func TestWatchdogCancelsInjectedStall(t *testing.T) {
	cfg := SmallTestDevice()
	cfg.KernelDeadline = 10 * time.Millisecond
	d := MustNew(cfg, true)
	d.SetFaultInjector(NewFaultInjector(FaultConfig{Seed: 1, StallProb: 1, StallFor: time.Minute}))
	k, fn := noopKernel(4)
	_, err := d.Launch(k, fn)
	var kerr *KernelError
	if !errors.As(err, &kerr) || kerr.Kind != FaultStall {
		t.Fatalf("want stall KernelError, got %v", err)
	}
	st := d.Stats()
	if st.WatchdogTrips != 1 || st.FaultStalls != 1 {
		t.Fatalf("watchdog accounting wrong: %+v", st)
	}
	if st.SimFaultTime < cfg.KernelDeadline {
		t.Fatalf("watchdog window not charged: %v < %v", st.SimFaultTime, cfg.KernelDeadline)
	}
}

// TestWatchdogCancelsHungKernel catches a genuinely hung kernel body (no
// injector involved).
func TestWatchdogCancelsHungKernel(t *testing.T) {
	cfg := SmallTestDevice()
	cfg.KernelDeadline = 10 * time.Millisecond
	d := MustNew(cfg, true)
	release := make(chan struct{})
	defer close(release)
	k := Kernel{Name: "hung", Items: 1, RegsPerThread: 16}
	_, err := d.Launch(k, func(int) { <-release })
	var kerr *KernelError
	if !errors.As(err, &kerr) || kerr.Kind != FaultStall {
		t.Fatalf("want stall KernelError for hung kernel, got %v", err)
	}
	if d.Stats().WatchdogTrips != 1 {
		t.Fatalf("watchdog trip not recorded: %+v", d.Stats())
	}
}

// TestWatchdogCancelStopsKernelBody: a genuinely slow kernel tripped by the
// watchdog must stop executing items at the next item boundary, not run to
// completion in a leaked goroutine behind the caller's retry.
func TestWatchdogCancelStopsKernelBody(t *testing.T) {
	cfg := SmallTestDevice()
	cfg.KernelDeadline = 5 * time.Millisecond
	d := MustNew(cfg, true)
	const items = 512
	var executed atomic.Int64
	k := Kernel{Name: "slow", Items: items, RegsPerThread: 16}
	_, err := d.Launch(k, func(int) {
		executed.Add(1)
		time.Sleep(time.Millisecond)
	})
	var kerr *KernelError
	if !errors.As(err, &kerr) || kerr.Kind != FaultStall {
		t.Fatalf("want stall KernelError for slow kernel, got %v", err)
	}
	// Wait for the cancelled body to settle, then confirm it stopped short.
	prev := executed.Load()
	for {
		time.Sleep(20 * time.Millisecond)
		cur := executed.Load()
		if cur == prev {
			break
		}
		prev = cur
	}
	if prev >= items {
		t.Fatalf("cancelled launch still executed all %d items", items)
	}
}

// TestStallWithoutWatchdog: a stall with no deadline armed is merely slow —
// the launch completes and the stalled goroutine is reclaimed via StallFor.
func TestStallWithoutWatchdog(t *testing.T) {
	d := MustNew(SmallTestDevice(), true)
	d.SetFaultInjector(NewFaultInjector(FaultConfig{Seed: 1, StallProb: 1, StallFor: 5 * time.Millisecond}))
	k, fn := noopKernel(4)
	if _, err := d.Launch(k, fn); err != nil {
		t.Fatalf("stall without watchdog should complete, got %v", err)
	}
	if st := d.Stats(); st.KernelLaunches != 1 || st.WatchdogTrips != 0 {
		t.Fatalf("stall-without-watchdog accounting wrong: %+v", st)
	}
}

// TestOOMFaultLeavesMemoryTable: the injected OOM must surface from the real
// allocator without corrupting the memory accounting.
func TestOOMFaultLeavesMemoryTable(t *testing.T) {
	d := MustNew(SmallTestDevice(), true)
	rm := d.RM()
	held, err := rm.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	freeBefore, usedBefore := rm.FreeBytes(), rm.MemoryInUse()
	d.SetFaultInjector(NewFaultInjector(FaultConfig{Seed: 1, OOMProb: 1}))
	k, fn := noopKernel(4)
	_, err = d.Launch(k, fn)
	var kerr *KernelError
	if !errors.As(err, &kerr) || kerr.Kind != FaultOOM {
		t.Fatalf("want oom KernelError, got %v", err)
	}
	if rm.FreeBytes() != freeBefore || rm.MemoryInUse() != usedBefore {
		t.Fatalf("OOM fault disturbed the memory table: free %d→%d, used %d→%d",
			freeBefore, rm.FreeBytes(), usedBefore, rm.MemoryInUse())
	}
	if err := held.Free(); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptFaultPoisonsSilently: with a Poison callback the launch succeeds
// and one item is perturbed; without one the corruption is a visible fault.
func TestCorruptFaultPoisonsSilently(t *testing.T) {
	d := MustNew(SmallTestDevice(), true)
	d.SetFaultInjector(NewFaultInjector(FaultConfig{Seed: 1, CorruptProb: 1}))
	out := make([]int, 8)
	k := Kernel{Name: "poisonable", Items: len(out), RegsPerThread: 16,
		Poison: func(item int) { out[item] = -1 }}
	if _, err := d.Launch(k, func(i int) { out[i] = i }); err != nil {
		t.Fatalf("corrupt fault must report success, got %v", err)
	}
	poisoned := 0
	for i, v := range out {
		if v == -1 {
			poisoned++
		} else if v != i {
			t.Fatalf("item %d not executed: %d", i, v)
		}
	}
	if poisoned != 1 {
		t.Fatalf("want exactly one poisoned item, got %d", poisoned)
	}
	st := d.Stats()
	if st.KernelLaunches != 1 || st.LaunchFailures != 0 || st.Health != DeviceHealthy {
		t.Fatalf("silent corruption must not be observed by the device: %+v", st)
	}

	// No Poison hook → the corruption cannot be modelled silently and the
	// launch fails visibly instead.
	k2 := Kernel{Name: "unpoisonable", Items: 4, RegsPerThread: 16}
	_, err := d.Launch(k2, func(int) {})
	var kerr *KernelError
	if !errors.As(err, &kerr) || kerr.Kind != FaultCorrupt {
		t.Fatalf("want visible corrupt KernelError, got %v", err)
	}
}

func TestHealthMachine(t *testing.T) {
	d := MustNew(SmallTestDevice(), true)
	if d.Health() != DeviceHealthy {
		t.Fatalf("new device not healthy: %s", d.Health())
	}
	// One reported failure degrades (DefaultHealthPolicy.DegradeAfter = 1).
	d.ReportFailure("k", FaultCorrupt)
	if d.Health() != DeviceDegraded {
		t.Fatalf("after one failure: %s, want degraded", d.Health())
	}
	// A successful launch recovers a Degraded device.
	k, fn := noopKernel(4)
	if _, err := d.Launch(k, fn); err != nil {
		t.Fatal(err)
	}
	if d.Health() != DeviceHealthy {
		t.Fatalf("success did not recover device: %s", d.Health())
	}
	// Three consecutive failures latch Failed.
	for i := 0; i < 3; i++ {
		d.ReportFailure("k", FaultAbort)
	}
	if d.Health() != DeviceFailed {
		t.Fatalf("after three failures: %s, want failed", d.Health())
	}
	// A Failed device refuses launches with a typed error…
	_, err := d.Launch(k, fn)
	var kerr *KernelError
	if !errors.As(err, &kerr) || kerr.Kind != FaultDeviceFailed {
		t.Fatalf("failed device must refuse launches, got %v", err)
	}
	// …never recovers…
	d.ReportFailure("k", FaultAbort) // still counted, state unchanged
	if d.Health() != DeviceFailed {
		t.Fatalf("failed device changed state: %s", d.Health())
	}
	// …and survives a stats reset.
	d.ResetStats()
	if d.Health() != DeviceFailed {
		t.Fatalf("ResetStats healed a failed device: %s", d.Health())
	}
}

func TestConfigValidateFaultFields(t *testing.T) {
	cfg := SmallTestDevice()
	cfg.KernelDeadline = -time.Second
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative KernelDeadline must not validate")
	}
	cfg = SmallTestDevice()
	cfg.HostWorkers = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative HostWorkers must not validate")
	}
}
