package gpu

import (
	"sync/atomic"
	"testing"
)

// FuzzConfigValidate throws arbitrary device geometries and kernel parameters
// at the validation and resource-management paths. The contract under fuzz is
// crash-freedom: an invalid configuration must be rejected by Validate, and
// any configuration that validates must build a device whose occupancy math
// and (bounded) launches stay in range without panicking.
func FuzzConfigValidate(f *testing.F) {
	small := SmallTestDevice()
	f.Add(small.SMs, small.WarpSize, small.MaxThreadsPerSM, small.MaxWarpsPerSM,
		small.RegistersPerSM, small.MaxRegistersPerThread, small.SharedMemPerSM,
		small.GlobalMemBytes, int64(0), 64, 16, 0, 8)
	f.Add(0, 0, 0, 0, 0, 0, 0, int64(0), int64(-1), -1, -1, -1, -1)
	f.Add(1, 1, 1, 1, 1, 1, 1, int64(1), int64(1), 1, 1, 1, 1)
	f.Fuzz(func(t *testing.T, sms, warp, threadsPerSM, warpsPerSM, regsPerSM,
		maxRegs, sharedPerSM int, gmem, deadlineNs int64,
		blockSize, regsPerThread, sharedPerBlock, items int) {
		cfg := Config{
			Name:                  "fuzz",
			SMs:                   sms,
			WarpSize:              warp,
			MaxThreadsPerSM:       threadsPerSM,
			MaxWarpsPerSM:         warpsPerSM,
			RegistersPerSM:        regsPerSM,
			MaxRegistersPerThread: maxRegs,
			SharedMemPerSM:        sharedPerSM,
			GlobalMemBytes:        gmem,
			TransferBytesPerSec:   1e9,
			TransferLatencySec:    1e-6,
			WordOpsPerSec:         1e9,
			HostWorkers:           2,
		}
		if err := cfg.Validate(); err != nil {
			return
		}
		d, err := New(cfg, true)
		if err != nil {
			t.Fatalf("validated config rejected by New: %v", err)
		}
		rm := d.RM()
		occ := rm.Occupancy(blockSize, regsPerThread, sharedPerBlock)
		if occ < 0 || occ > 1 {
			t.Fatalf("occupancy %v out of [0,1] for block=%d regs=%d shared=%d",
				occ, blockSize, regsPerThread, sharedPerBlock)
		}
		if bs := rm.PickBlockSize(items, regsPerThread, sharedPerBlock); bs <= 0 {
			t.Fatalf("PickBlockSize returned %d", bs)
		}
		// A bounded launch must either run or fail with an error — never panic.
		n := items % 64
		if n < 0 {
			n = -n
		}
		k := Kernel{Name: "fuzz_kernel", Items: n,
			RegsPerThread: regsPerThread % 512, SharedPerBlock: sharedPerBlock % (1 << 16), WordOps: 3}
		var ran int64
		_, err = d.Launch(k, func(int) { atomic.AddInt64(&ran, 1) })
		if err == nil && n > 0 && atomic.LoadInt64(&ran) != int64(n) {
			t.Fatalf("launch of %d items ran %d bodies", n, ran)
		}
	})
}
