package gpu

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := RTX3090().Validate(); err != nil {
		t.Fatalf("RTX3090 config invalid: %v", err)
	}
	bad := RTX3090()
	bad.SMs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero SMs should be invalid")
	}
	bad = RTX3090()
	bad.TransferBytesPerSec = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero transfer rate should be invalid")
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	if _, err := New(Config{}, true); err == nil {
		t.Fatal("New should reject a zero config")
	}
}

func TestLaunchRunsEveryItem(t *testing.T) {
	d := MustNew(SmallTestDevice(), true)
	const n = 1000
	var hits [n]int32
	occ, err := d.Launch(Kernel{Name: "touch", Items: n, RegsPerThread: 32, WordOps: 10},
		func(i int) { atomic.AddInt32(&hits[i], 1) })
	if err != nil {
		t.Fatal(err)
	}
	if occ <= 0 || occ > 1 {
		t.Fatalf("occupancy out of range: %v", occ)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("item %d executed %d times", i, h)
		}
	}
	s := d.Stats()
	if s.KernelLaunches != 1 || s.ThreadsExecuted != n {
		t.Fatalf("stats = %+v", s)
	}
	if s.SimComputeTime <= 0 {
		t.Fatal("simulated compute time not accounted")
	}
}

func TestLaunchZeroItems(t *testing.T) {
	d := MustNew(SmallTestDevice(), true)
	if _, err := d.Launch(Kernel{Name: "empty"}, func(int) { t.Fatal("should not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchRejectsExcessRegisters(t *testing.T) {
	d := MustNew(SmallTestDevice(), true)
	_, err := d.Launch(Kernel{Name: "fat", Items: 1, RegsPerThread: 10000}, func(int) {})
	if err == nil {
		t.Fatal("register demand over the per-thread cap should fail")
	}
}

func TestTransferAccounting(t *testing.T) {
	d := MustNew(SmallTestDevice(), true)
	d.CopyToDevice(1 << 20)
	d.CopyFromDevice(1 << 19)
	s := d.Stats()
	if s.BytesHostToDev != 1<<20 || s.BytesDevToHost != 1<<19 {
		t.Fatalf("byte counters wrong: %+v", s)
	}
	if s.SimTransferTime <= 0 {
		t.Fatal("transfer time not accounted")
	}
	d.ResetStats()
	if d.Stats().BytesHostToDev != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
}

func TestOccupancyMonotoneInRegisters(t *testing.T) {
	rm := NewResourceManager(RTX3090(), true)
	prev := 2.0
	for _, regs := range []int{16, 32, 64, 128, 255} {
		occ := rm.Occupancy(256, regs, 0)
		if occ > prev {
			t.Fatalf("occupancy increased with register pressure at %d regs", regs)
		}
		prev = occ
	}
	if rm.Occupancy(0, 32, 0) != 0 {
		t.Fatal("zero block size should give zero occupancy")
	}
}

func TestOccupancySharedMemoryLimit(t *testing.T) {
	cfg := RTX3090()
	rm := NewResourceManager(cfg, true)
	free := rm.Occupancy(256, 32, 0)
	constrained := rm.Occupancy(256, 32, cfg.SharedMemPerSM) // one block per SM
	if constrained >= free {
		t.Fatalf("shared memory pressure should reduce occupancy: %v vs %v", constrained, free)
	}
}

func TestPickBlockSizePolicies(t *testing.T) {
	cfg := RTX3090()
	fine := NewResourceManager(cfg, true)
	coarse := NewResourceManager(cfg, false)
	if got := coarse.PickBlockSize(1<<20, 200, 0); got != 1024 {
		t.Fatalf("coarse policy should return the fixed size, got %d", got)
	}
	// Heavy register demand: fine policy should avoid giant blocks.
	bs := fine.PickBlockSize(1<<20, 200, 0)
	if fine.Occupancy(bs, 200, 0) < fine.Occupancy(1024, 200, 0) {
		t.Fatalf("fine policy picked %d with worse occupancy than 1024", bs)
	}
	// Few tasks: block should shrink so all SMs get work.
	small := fine.PickBlockSize(cfg.SMs*32, 32, 0)
	if (cfg.SMs*32+small-1)/small < cfg.SMs {
		t.Fatalf("small task count left SMs idle: block %d", small)
	}
}

func TestFinePolicyBeatsCoarseUtilization(t *testing.T) {
	// The Fig. 6 mechanism: for register-heavy HE kernels, the fine-grained
	// manager must achieve at least the coarse manager's occupancy.
	cfg := RTX3090()
	fine := NewResourceManager(cfg, true)
	coarse := NewResourceManager(cfg, false)
	for _, regs := range []int{40, 80, 120, 200, 255} {
		fb := fine.PickBlockSize(1<<20, regs, 0)
		fo := fine.Occupancy(fb, regs, 0)
		co := coarse.Occupancy(coarse.PickBlockSize(1<<20, regs, 0), regs, 0)
		if fo < co {
			t.Fatalf("fine occupancy %v < coarse %v at %d regs", fo, co, regs)
		}
	}
}

func TestAllocReuseAndFree(t *testing.T) {
	rm := NewResourceManager(SmallTestDevice(), true)
	b1, err := rm.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if rm.MemoryInUse() != 1024 {
		t.Fatalf("MemoryInUse = %d", rm.MemoryInUse())
	}
	if err := b1.Free(); err != nil {
		t.Fatal(err)
	}
	b2, err := rm.Alloc(512) // should reuse the freed 1024-byte region
	if err != nil {
		t.Fatal(err)
	}
	if b2.Addr != b1.Addr {
		t.Fatalf("expected region reuse at %d, got %d", b1.Addr, b2.Addr)
	}
	st := rm.Stats()
	if st.Allocs != 1 || st.Reuses != 1 || st.Frees != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAllocErrors(t *testing.T) {
	rm := NewResourceManager(SmallTestDevice(), true)
	if _, err := rm.Alloc(0); err == nil {
		t.Fatal("zero-size alloc should fail")
	}
	if _, err := rm.Alloc(2 << 20); err == nil { // device has 1 MiB
		t.Fatal("over-capacity alloc should fail")
	}
	b, _ := rm.Alloc(64)
	if err := b.Free(); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(); err == nil {
		t.Fatal("double free should be reported")
	}
	var zero Buffer
	if err := zero.Free(); err == nil {
		t.Fatal("free of zero buffer should be reported")
	}
}

func TestRegisterAccounting(t *testing.T) {
	cfg := SmallTestDevice()
	rm := NewResourceManager(cfg, true)
	total := cfg.RegistersPerSM * cfg.SMs
	if !rm.AcquireRegisters(total) {
		t.Fatal("full register file should be acquirable")
	}
	if rm.AcquireRegisters(1) {
		t.Fatal("over-subscription should fail")
	}
	rm.ReleaseRegisters(total)
	if !rm.AcquireRegisters(1) {
		t.Fatal("release did not return registers")
	}
	rm.ReleaseRegisters(100) // over-release clamps at zero
	if !rm.AcquireRegisters(total) {
		t.Fatal("clamped pool should be fully available")
	}
}

func TestBranchCostPolicies(t *testing.T) {
	fine := NewResourceManager(SmallTestDevice(), true)
	coarse := NewResourceManager(SmallTestDevice(), false)
	if e, r := fine.BranchCost(0); e != 1 || r != 1 {
		t.Fatalf("no divergence should be free, got %v/%v", e, r)
	}
	fe, fr := fine.BranchCost(4)
	ce, cr := coarse.BranchCost(4)
	if fr != 1 || cr <= 1 {
		t.Fatalf("register factors: fine %v, coarse %v", fr, cr)
	}
	if fe > ce+2 {
		t.Fatalf("fine branch handling should not cost more: %v vs %v", fe, ce)
	}
	if fine.Stats().BranchCombine != 1 || coarse.Stats().BranchSplit != 1 {
		t.Fatal("branch counters not updated")
	}
}

func TestLaunchCooperativeBarrier(t *testing.T) {
	d := MustNew(SmallTestDevice(), true)
	const blocks, threads = 6, 8
	// Each thread writes its ID into shared memory, syncs, then verifies it
	// can read every other thread's value — failing without a real barrier.
	errs := make(chan string, blocks*threads)
	err := d.LaunchCooperative("barrier-test", blocks, threads, threads, func(tc *ThreadCtx) {
		tc.Shared[tc.Thread] = uint32(tc.Thread + 1)
		tc.SyncThreads()
		for i := 0; i < tc.Threads; i++ {
			if tc.Shared[i] != uint32(i+1) {
				errs <- "missing write after barrier"
			}
		}
		tc.SyncThreads()
		tc.Shared[tc.Thread] = 0
	})
	if err != nil {
		t.Fatal(err)
	}
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if got := d.Stats().ThreadsExecuted; got != blocks*threads {
		t.Fatalf("ThreadsExecuted = %d", got)
	}
}

func TestLaunchCooperativeGeometryErrors(t *testing.T) {
	d := MustNew(SmallTestDevice(), true)
	if err := d.LaunchCooperative("bad", 1, 0, 0, func(*ThreadCtx) {}); err == nil {
		t.Fatal("zero threads should fail")
	}
	if err := d.LaunchCooperative("bad", 1, 1<<20, 0, func(*ThreadCtx) {}); err == nil {
		t.Fatal("oversized block should fail")
	}
}

func TestPropertyOccupancyBounded(t *testing.T) {
	rm := NewResourceManager(RTX3090(), true)
	f := func(bs uint8, regs uint8, shared uint16) bool {
		occ := rm.Occupancy(int(bs), int(regs), int(shared))
		return occ >= 0 && occ <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLaunchOverhead(b *testing.B) {
	d := MustNew(RTX3090(), true)
	k := Kernel{Name: "noop", Items: 1024, RegsPerThread: 32, WordOps: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Launch(k, func(int) {}); err != nil {
			b.Fatal(err)
		}
	}
}
