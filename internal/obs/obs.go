// Package obs is the observability layer: a seeded, sim-time span recorder
// whose export loads in Perfetto/chrome://tracing, and a metrics registry
// (counters and gauges) that the gpu, ghe, flnet, and fl layers publish
// into. Everything is nil-safe — a nil *Obs, *Recorder, or *Registry makes
// every method a no-op — so instrumented hot paths cost one pointer check
// when observability is disabled.
//
// Spans carry *simulated* time only (the device cost model, the link model,
// the stream schedules), never host wall time, so two same-seed runs of a
// GPU-profile experiment produce byte-identical trace exports. The metrics
// registry doubles as the reconciliation substrate: the fl cost accumulator
// mirrors every counter it aggregates, and fl.Context.ReconcileObs asserts
// the mirror equals the CostSnapshot after a run (DESIGN.md §9).
package obs

// Obs bundles one run's span recorder and metrics registry.
type Obs struct {
	rec *Recorder
	reg *Registry
}

// New creates an observability bundle seeded for trace metadata.
func New(seed uint64) *Obs {
	return &Obs{rec: NewRecorder(seed), reg: NewRegistry()}
}

// Recorder returns the span recorder; nil when o is nil.
func (o *Obs) Recorder() *Recorder {
	if o == nil {
		return nil
	}
	return o.rec
}

// Metrics returns the metrics registry; nil when o is nil.
func (o *Obs) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Reset clears both the recorded spans and the registry.
func (o *Obs) Reset() {
	if o == nil {
		return
	}
	o.rec.Reset()
	o.reg.Reset()
}
