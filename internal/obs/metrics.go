package obs

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Registry is a flat metrics store: monotonic int64 counters (Add) that
// publishers may also overwrite wholesale (Set, for pull-style snapshots of
// layer stats), and float64 gauges. Names are dotted paths like
// "gpu.FLBooster-256.launches". A nil *Registry is a valid disabled
// registry whose methods do nothing and read as zero.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
	}
}

// Add increments a counter.
func (g *Registry) Add(name string, delta int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.counters[name] += delta
	g.mu.Unlock()
}

// Set overwrites a counter with an absolute value — the pull-publishing
// path layers use to snapshot their own stats into the registry.
func (g *Registry) Set(name string, v int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.counters[name] = v
	g.mu.Unlock()
}

// SetMax raises a counter to v if v is larger — a high-water mark (the
// journal's latest durable round, peak queue depths). Lower values are
// ignored so publishers may report out of order.
func (g *Registry) SetMax(name string, v int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if v > g.counters[name] {
		g.counters[name] = v
	}
	g.mu.Unlock()
}

// SetGauge overwrites a gauge.
func (g *Registry) SetGauge(name string, v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.gauges[name] = v
	g.mu.Unlock()
}

// Counter reads a counter (0 when absent or g is nil).
func (g *Registry) Counter(name string) int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.counters[name]
}

// Gauge reads a gauge (0 when absent or g is nil).
func (g *Registry) Gauge(name string) float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.gauges[name]
}

// Reset clears every counter and gauge.
func (g *Registry) Reset() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.counters = make(map[string]int64)
	g.gauges = make(map[string]float64)
	g.mu.Unlock()
}

// WriteText dumps the registry as sorted "counter <name> <value>" /
// "gauge <name> <value>" lines — the flbench/flserver metrics dump format.
func (g *Registry) WriteText(w io.Writer) error {
	var b bytes.Buffer
	if g != nil {
		g.mu.Lock()
		cnames := make([]string, 0, len(g.counters))
		for n := range g.counters {
			cnames = append(cnames, n)
		}
		gnames := make([]string, 0, len(g.gauges))
		for n := range g.gauges {
			gnames = append(gnames, n)
		}
		sort.Strings(cnames)
		sort.Strings(gnames)
		for _, n := range cnames {
			fmt.Fprintf(&b, "counter %s %d\n", n, g.counters[n])
		}
		for _, n := range gnames {
			fmt.Fprintf(&b, "gauge %s %g\n", n, g.gauges[n])
		}
		g.mu.Unlock()
	}
	_, err := w.Write(b.Bytes())
	return err
}
