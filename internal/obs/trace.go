package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one interval on the simulated clock: a kernel launch, a PCIe copy,
// a pipeline chunk stage, a round phase. Party maps to a trace process,
// Lane to a thread within it, so Perfetto renders each party's stream lanes
// stacked under one heading.
type Span struct {
	// Phase names what ran (kernel name, "round3.upload", "chunk7").
	Phase string
	// Party is the owning actor: a client or server name, a device label.
	Party string
	// Lane is the execution lane within the party: "gpu.kernel", "gpu.h2d",
	// "fl.encrypt", "fl.send", "fl.round", ...
	Lane string
	// Device identifies which member of a multi-device set emitted the span
	// ("dev0"…). Empty for single-device and non-device spans.
	Device string
	// Start and Dur locate the span on the simulated clock. Wall time never
	// appears here — that is what keeps same-seed traces byte-identical.
	Start time.Duration
	Dur   time.Duration
}

// Recorder accumulates spans. It is safe for concurrent use; a nil
// *Recorder is a valid disabled recorder whose methods do nothing.
type Recorder struct {
	mu    sync.Mutex
	seed  uint64
	spans []Span
}

// NewRecorder creates a recorder stamped with the run's seed.
func NewRecorder(seed uint64) *Recorder { return &Recorder{seed: seed} }

// Seed returns the stamped run seed (0 for a nil recorder).
func (r *Recorder) Seed() uint64 {
	if r == nil {
		return 0
	}
	return r.seed
}

// Record appends one span. Negative durations are clamped to zero so a
// misbehaving producer cannot emit intervals that run backwards.
func (r *Recorder) Record(s Span) {
	if r == nil {
		return
	}
	if s.Dur < 0 {
		s.Dur = 0
	}
	if s.Start < 0 {
		s.Start = 0
	}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// Len returns the number of recorded spans (0 for a nil recorder).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Reset discards every recorded span.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = nil
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans in canonical order: sorted by
// (Start, Party, Lane, Phase, Dur). Producers on different goroutines may
// append in any interleaving; the canonical order is what makes same-seed
// exports byte-identical.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Party != b.Party {
			return a.Party < b.Party
		}
		if a.Lane != b.Lane {
			return a.Lane < b.Lane
		}
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		return a.Dur < b.Dur
	})
	return out
}

// usec formats a sim duration as Chrome trace microseconds with nanosecond
// precision, deterministically (no float formatting).
func usec(d time.Duration) string {
	ns := int64(d)
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// jstr marshals a string as a JSON literal.
func jstr(s string) string {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return `""`
	}
	return string(b)
}

// WriteTrace exports the recorded spans as Chrome trace-event JSON
// (loadable in Perfetto or chrome://tracing): one complete ("X") event per
// span, with process/thread metadata naming parties and lanes. The output
// is a pure function of the canonical span set, so two same-seed runs
// export identical bytes.
func (r *Recorder) WriteTrace(w io.Writer) error {
	spans := r.Spans()

	// Assign pids to parties and tids to lanes in sorted order.
	partySet := map[string]bool{}
	laneSet := map[string]map[string]bool{}
	for _, s := range spans {
		partySet[s.Party] = true
		if laneSet[s.Party] == nil {
			laneSet[s.Party] = map[string]bool{}
		}
		laneSet[s.Party][s.Lane] = true
	}
	parties := make([]string, 0, len(partySet))
	for p := range partySet {
		parties = append(parties, p)
	}
	sort.Strings(parties)
	pid := make(map[string]int, len(parties))
	tid := make(map[string]map[string]int, len(parties))
	for i, p := range parties {
		pid[p] = i + 1
		lanes := make([]string, 0, len(laneSet[p]))
		for l := range laneSet[p] {
			lanes = append(lanes, l)
		}
		sort.Strings(lanes)
		tid[p] = make(map[string]int, len(lanes))
		for j, l := range lanes {
			tid[p][l] = j + 1
		}
	}

	var b bytes.Buffer
	fmt.Fprintf(&b, "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"seed\":\"%d\",\"spans\":\"%d\"},\"traceEvents\":[", r.Seed(), len(spans))
	first := true
	emit := func(format string, args ...any) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, format, args...)
	}
	for _, p := range parties {
		emit(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`, pid[p], jstr(p))
		lanes := make([]string, 0, len(tid[p]))
		for l := range tid[p] {
			lanes = append(lanes, l)
		}
		sort.Strings(lanes)
		for _, l := range lanes {
			emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`, pid[p], tid[p][l], jstr(l))
		}
	}
	for _, s := range spans {
		if s.Device != "" {
			emit(`{"name":%s,"cat":"sim","ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":{"device_id":%s}}`,
				jstr(s.Phase), pid[s.Party], tid[s.Party][s.Lane], usec(s.Start), usec(s.Dur), jstr(s.Device))
			continue
		}
		emit(`{"name":%s,"cat":"sim","ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s}`,
			jstr(s.Phase), pid[s.Party], tid[s.Party][s.Lane], usec(s.Start), usec(s.Dur))
	}
	b.WriteString("]}\n")
	_, err := w.Write(b.Bytes())
	return err
}
