package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestNilRecorderAndRegistryAreSafe(t *testing.T) {
	var rec *Recorder
	rec.Record(Span{Phase: "p", Party: "a", Lane: "l", Dur: time.Second})
	if rec.Len() != 0 || rec.Spans() != nil {
		t.Fatal("nil recorder should hold nothing")
	}
	rec.Reset()
	if err := rec.WriteTrace(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil recorder WriteTrace: %v", err)
	}

	var reg *Registry
	reg.Add("c", 1)
	reg.Set("c", 2)
	reg.SetGauge("g", 3)
	if reg.Counter("c") != 0 || reg.Gauge("g") != 0 {
		t.Fatal("nil registry should read zero")
	}
	reg.Reset()
	if err := reg.WriteText(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil registry WriteText: %v", err)
	}

	var o *Obs
	if o.Recorder() != nil || o.Metrics() != nil {
		t.Fatal("nil bundle should expose nil components")
	}
	o.Reset()
}

func TestRecorderClampsNegativeTimes(t *testing.T) {
	rec := NewRecorder(1)
	rec.Record(Span{Phase: "p", Party: "a", Lane: "l", Start: -time.Second, Dur: -time.Millisecond})
	spans := rec.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].Start != 0 || spans[0].Dur != 0 {
		t.Fatalf("negative times not clamped: %+v", spans[0])
	}
}

func TestSpansSortedCanonically(t *testing.T) {
	// Record in scrambled order; Spans must sort by start, party, lane,
	// phase, dur regardless.
	in := []Span{
		{Phase: "z", Party: "b", Lane: "l1", Start: 2, Dur: 1},
		{Phase: "a", Party: "a", Lane: "l2", Start: 1, Dur: 1},
		{Phase: "a", Party: "a", Lane: "l1", Start: 1, Dur: 2},
		{Phase: "a", Party: "a", Lane: "l1", Start: 1, Dur: 1},
	}
	rec := NewRecorder(0)
	for _, s := range in {
		rec.Record(s)
	}
	got := rec.Spans()
	want := []Span{in[3], in[2], in[1], in[0]}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("span %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWriteTraceIsValidJSONAndOrderIndependent(t *testing.T) {
	spans := []Span{
		{Phase: "enc", Party: "client0", Lane: "fl.encrypt", Start: 10 * time.Microsecond, Dur: 5 * time.Microsecond},
		{Phase: "send", Party: "client0", Lane: "fl.send", Start: 15 * time.Microsecond, Dur: 3 * time.Microsecond},
		{Phase: "mul", Party: "gpu", Lane: "gpu.kernel", Start: 0, Dur: 7 * time.Microsecond},
	}
	a, b := NewRecorder(42), NewRecorder(42)
	for _, s := range spans {
		a.Record(s)
	}
	for i := len(spans) - 1; i >= 0; i-- { // reversed arrival order
		b.Record(spans[i])
	}
	var bufA, bufB bytes.Buffer
	if err := a.WriteTrace(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteTrace(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatalf("trace bytes depend on recording order:\n%s\nvs\n%s", bufA.Bytes(), bufB.Bytes())
	}

	var doc struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(bufA.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, bufA.Bytes())
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			complete++
		}
	}
	if complete != len(spans) {
		t.Fatalf("%d complete events, want %d", complete, len(spans))
	}
	if meta == 0 {
		t.Fatal("no process/thread metadata events")
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	reg := NewRegistry()
	reg.Add("x", 2)
	reg.Add("x", 3)
	reg.Set("y", 7)
	reg.SetGauge("g", 0.5)
	if reg.Counter("x") != 5 || reg.Counter("y") != 7 {
		t.Fatalf("counters x=%d y=%d", reg.Counter("x"), reg.Counter("y"))
	}
	// SetMax is a high-water mark: it raises, never lowers.
	reg.SetMax("w", 4)
	reg.SetMax("w", 2)
	if reg.Counter("w") != 4 {
		t.Fatalf("SetMax lowered the mark: w=%d", reg.Counter("w"))
	}
	reg.SetMax("w", 9)
	if reg.Counter("w") != 9 {
		t.Fatalf("SetMax did not raise the mark: w=%d", reg.Counter("w"))
	}
	if reg.Gauge("g") != 0.5 {
		t.Fatalf("gauge g=%v", reg.Gauge("g"))
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "counter w 9\ncounter x 5\ncounter y 7\ngauge g 0.5\n"
	if buf.String() != want {
		t.Fatalf("WriteText = %q, want %q", buf.String(), want)
	}
	reg.Reset()
	if reg.Counter("x") != 0 || reg.Gauge("g") != 0 {
		t.Fatal("Reset left values behind")
	}
}

func TestObsBundleReset(t *testing.T) {
	o := New(3)
	o.Recorder().Record(Span{Phase: "p", Party: "a", Lane: "l", Dur: time.Second})
	o.Metrics().Add("c", 1)
	o.Reset()
	if o.Recorder().Len() != 0 || o.Metrics().Counter("c") != 0 {
		t.Fatal("bundle Reset incomplete")
	}
	if o.Recorder().Seed() != 3 {
		t.Fatal("Reset lost the seed")
	}
}
