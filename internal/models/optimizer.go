package models

import "flbooster/internal/datasets"

// Optimizer applies a gradient step to a parameter vector. The paper's
// experiments train every model with Adam (§VI-B, "Adam optimizer is used
// to train the models"); plain SGD remains available for ablations.
type Optimizer interface {
	// Step updates params in place from grads (same length).
	Step(params, grads []float64)
	// Reset clears accumulated state (between cross-validation folds etc.).
	Reset()
}

// SGD is fixed-learning-rate stochastic gradient descent.
type SGD struct {
	// LR is the learning rate.
	LR float64
}

// Step implements Optimizer.
func (s *SGD) Step(params, grads []float64) {
	for i := range params {
		params[i] -= s.LR * grads[i]
	}
}

// Reset implements Optimizer.
func (s *SGD) Reset() {}

// Adam implements Kingma & Ba's optimizer with bias correction — the
// paper's training configuration.
type Adam struct {
	// LR is the base step size.
	LR float64
	// Beta1 and Beta2 are the moment decay rates (defaults 0.9 / 0.999).
	Beta1, Beta2 float64
	// Eps stabilizes the denominator (default 1e-8).
	Eps float64

	m, v []float64
	t    int
}

// NewAdam returns an Adam optimizer with the standard hyperparameters.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (a *Adam) Step(params, grads []float64) {
	if len(a.m) != len(params) {
		a.m = make([]float64, len(params))
		a.v = make([]float64, len(params))
		a.t = 0
	}
	a.t++
	// Bias-corrected step size: lr·√(1−β₂ᵗ)/(1−β₁ᵗ).
	c1 := 1 - powInt(a.Beta1, a.t)
	c2 := 1 - powInt(a.Beta2, a.t)
	step := a.LR * sqrtF(c2) / c1
	for i := range params {
		g := grads[i]
		a.m[i] = a.Beta1*a.m[i] + (1-a.Beta1)*g
		a.v[i] = a.Beta2*a.v[i] + (1-a.Beta2)*g*g
		params[i] -= step * a.m[i] / (sqrtF(a.v[i]) + a.Eps)
	}
}

// Reset implements Optimizer.
func (a *Adam) Reset() {
	a.m, a.v, a.t = nil, nil, 0
}

// powInt computes bᵗ for small positive t.
func powInt(b float64, t int) float64 {
	r := 1.0
	for ; t > 0; t-- {
		r *= b
	}
	return r
}

// sqrtF is √x via the dependency-free Newton helper.
func sqrtF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Seed from Exp/Log keeps convergence fast across magnitudes.
	g := datasets.Exp(0.5 * datasets.Log(x))
	for i := 0; i < 4; i++ {
		g = 0.5 * (g + x/g)
	}
	return g
}

// newOptimizer builds the optimizer the options request.
func newOptimizer(o Options) Optimizer {
	if o.UseSGD {
		return &SGD{LR: o.LearningRate}
	}
	return NewAdam(o.LearningRate)
}
