package models

import (
	"fmt"

	"flbooster/internal/datasets"
	"flbooster/internal/fl"
	"flbooster/internal/flnet"
	"flbooster/internal/mpint"
	"flbooster/internal/paillier"
)

// HeteroSBT is SecureBoost (Cheng et al.): gradient-boosted decision trees
// over vertically partitioned data. The guest owns the labels, computes
// first/second-order gradients (g, h) per sample each boosting round, and
// encrypts them; hosts build encrypted per-(feature, bin) histograms by
// homomorphic subset sums and return them; the guest decrypts, scores every
// candidate split with the XGBoost gain, and grows the tree.
//
// Batch compression for SBT is SecureBoost+-style ciphertext packing: the
// (g, h) pair of one sample shares a single plaintext (g in the high slot,
// h in the low slot), halving ciphertext counts and HE operations on every
// flow while keeping subset-sum aggregation valid — multi-sample packing is
// impossible here because histogram bins select arbitrary sample subsets.
type HeteroSBT struct {
	opts  Options
	ctx   *fl.Context // nil in plaintext-oracle mode
	net   flnet.Transport
	parts []*datasets.Dataset
	full  *datasets.Dataset

	// Trees is the grown ensemble.
	Trees []*sbtNode
	// margins holds the ensemble's raw scores per training sample.
	margins []float64

	// Tuning knobs (XGBoost-standard).
	MaxDepth int
	Bins     int
	Lambda   float64 // leaf L2
	Gamma    float64 // split penalty
	Eta      float64 // shrinkage

	// ghBits is the per-component quantization width; headBits the guard
	// width sized for the largest possible node (the full dataset).
	ghBits   uint
	headBits uint
}

// sbtNode is one tree node. Split nodes carry the owning party and its
// local feature/threshold; leaves carry the output weight.
type sbtNode struct {
	Party     int
	Feature   int
	Threshold float64
	Left      *sbtNode
	Right     *sbtNode
	Leaf      bool
	Weight    float64
}

// NewHeteroSBT partitions ds vertically and prepares a boosting trainer.
func NewHeteroSBT(ctx *fl.Context, ds *datasets.Dataset, opts Options) (*HeteroSBT, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	parties := oracleParties(opts)
	if ctx != nil {
		parties = ctx.Profile.Parties
	}
	parts, err := datasets.PartitionVertical(ds, parties)
	if err != nil {
		return nil, fmt.Errorf("models: HeteroSBT partition: %w", err)
	}
	m := &HeteroSBT{
		opts:     opts,
		ctx:      ctx,
		parts:    parts,
		full:     ds,
		margins:  make([]float64, ds.Len()),
		MaxDepth: 3,
		Bins:     8,
		Lambda:   1,
		Gamma:    0,
		Eta:      0.3,
	}
	// Guard bits must absorb a sum over every sample; both packed
	// components must fit one uint64 after aggregation.
	m.headBits = ceilLog2U(ds.Len()) + 1
	m.ghBits = 20
	if ctx != nil && uint(ctx.Profile.RBits) < m.ghBits {
		m.ghBits = ctx.Profile.RBits
	}
	for 2*(m.ghBits+m.headBits) > 62 && m.ghBits > 4 {
		m.ghBits--
	}
	if ctx != nil {
		names := make([]string, 0, parties+1)
		for p := 0; p < parties; p++ {
			names = append(names, hostName(p))
		}
		names = append(names, arbiterName)
		m.net = flnet.NewSimTransport(ctx.Link, names...)
	}
	return m, nil
}

func ceilLog2U(n int) uint {
	var b uint
	v := 1
	for v < n {
		v <<= 1
		b++
	}
	return b
}

// Name implements Model.
func (m *HeteroSBT) Name() string { return "Hetero SBT" }

// Loss implements Model: mean log-loss of the current ensemble margins.
func (m *HeteroSBT) Loss() float64 {
	var loss float64
	for i, ex := range m.full.Examples {
		loss += crossEntropy(datasets.Sigmoid(m.margins[i]), ex.Label)
	}
	return loss / float64(m.full.Len())
}

// gradients computes per-sample (g, h) from the current margins.
func (m *HeteroSBT) gradients() (g, h []float64) {
	n := m.full.Len()
	g = make([]float64, n)
	h = make([]float64, n)
	for i, ex := range m.full.Examples {
		p := datasets.Sigmoid(m.margins[i])
		g[i] = p - ex.Label
		h[i] = p * (1 - p)
		if h[i] < 1e-6 {
			h[i] = 1e-6
		}
	}
	return g, h
}

// --- GH quantization -------------------------------------------------------

// ghMax is the per-component quantization ceiling.
func (m *HeteroSBT) ghMax() uint64 { return 1<<m.ghBits - 1 }

// quantGH maps g ∈ [−1, 1] (and h ∈ [0, 1]) to ghBits-wide integers with the
// Eq. 6/7 shift.
func (m *HeteroSBT) quantGH(v float64) uint64 {
	if v < -1 {
		v = -1
	}
	if v > 1 {
		v = 1
	}
	return uint64((v + 1) / 2 * float64(m.ghMax()))
}

// dequantGHSum decodes a homomorphic sum of cnt quantized components.
func (m *HeteroSBT) dequantGHSum(sum uint64, cnt int) float64 {
	return float64(sum)/float64(m.ghMax())*2 - float64(cnt)
}

// slotWidth is the packed per-component width (value + guard bits).
func (m *HeteroSBT) slotWidth() uint { return m.ghBits + m.headBits }

// encryptGH encrypts the per-sample gradient/hessian streams. With batch
// compression, one ciphertext carries the (g, h) pair; otherwise g and h
// each get their own ciphertext, concatenated as [g...; h...].
func (m *HeteroSBT) encryptGH(g, h []float64) ([]paillier.Ciphertext, error) {
	n := len(g)
	packed := m.ctx.Packer != nil
	var pts []mpint.Nat
	if packed {
		pts = make([]mpint.Nat, n)
		for i := range g {
			v := m.quantGH(g[i])<<m.slotWidth() | m.quantGH(h[i])
			pts[i] = mpint.FromUint64(v)
		}
	} else {
		pts = make([]mpint.Nat, 2*n)
		for i := range g {
			pts[i] = mpint.FromUint64(m.quantGH(g[i]))
			pts[n+i] = mpint.FromUint64(m.quantGH(h[i]))
		}
	}
	cts, err := m.ctx.EncryptNats(pts, int64(2*n))
	if err != nil {
		return nil, err
	}
	m.ctx.Costs.AddCompression(int64(2*n), int64(len(cts)))
	return cts, nil
}

// ghAt returns the ciphertext(s) holding sample i's pair under the current
// packing: one ct when packed, (g_ct, h_ct) when not.
func (m *HeteroSBT) ghRefs(cts []paillier.Ciphertext, n, i int) []paillier.Ciphertext {
	if m.ctx.Packer != nil {
		return cts[i : i+1]
	}
	return []paillier.Ciphertext{cts[i], cts[n+i]}
}

// decodeGH splits a decrypted histogram sum into (G, H) for cnt samples.
func (m *HeteroSBT) decodeGH(raw []uint64, cnt int) (gSum, hSum float64) {
	if m.ctx.Packer != nil {
		v := raw[0]
		mask := uint64(1)<<m.slotWidth() - 1
		gSum = m.dequantGHSum(v>>m.slotWidth(), cnt)
		hSum = m.dequantGHSum(v&mask, cnt)
		return gSum, hSum
	}
	return m.dequantGHSum(raw[0], cnt), m.dequantGHSum(raw[1], cnt)
}

// --- training ---------------------------------------------------------------

// TrainEpoch implements Model: one boosting round grows one tree on the full
// dataset and updates the margins.
func (m *HeteroSBT) TrainEpoch() (float64, error) {
	g, h := m.gradients()
	all := make([]int, m.full.Len())
	for i := range all {
		all[i] = i
	}
	var root *sbtNode
	var err error
	if m.ctx == nil {
		root = m.buildPlain(all, g, h, 0)
	} else {
		root, err = m.buildEncrypted(all, g, h)
		if err != nil {
			return 0, err
		}
	}
	m.Trees = append(m.Trees, root)
	for i := range m.margins {
		m.margins[i] += m.Eta * m.predictTree(root, i)
	}
	return m.Loss(), nil
}

// buildEncrypted runs the SecureBoost protocol for one tree.
func (m *HeteroSBT) buildEncrypted(samples []int, g, h []float64) (*sbtNode, error) {
	// Round setup: guest encrypts the (g, h) stream and broadcasts it.
	n := m.full.Len()
	cts, err := m.encryptGH(g, h)
	if err != nil {
		return nil, err
	}
	for p := 1; p < len(m.parts); p++ {
		if err := m.send(hostName(0), hostName(p), "gh", ciphertextBytes(m.ctx, len(cts))); err != nil {
			return nil, err
		}
	}
	return m.growNode(samples, g, h, cts, n, 0)
}

func (m *HeteroSBT) growNode(samples []int, g, h []float64, cts []paillier.Ciphertext, n, depth int) (*sbtNode, error) {
	gTot, hTot := sumGH(samples, g, h)
	if depth >= m.MaxDepth || len(samples) < 4 {
		return m.leaf(gTot, hTot), nil
	}
	best := splitCandidate{gain: m.Gamma}
	for p := range m.parts {
		cand, err := m.partyBestSplit(p, samples, g, h, cts, n, gTot, hTot)
		if err != nil {
			return nil, err
		}
		if cand.gain > best.gain {
			best = cand
		}
	}
	if best.gain <= m.Gamma || best.feature < 0 {
		return m.leaf(gTot, hTot), nil
	}
	left, right := m.partition(best, samples)
	if len(left) == 0 || len(right) == 0 {
		return m.leaf(gTot, hTot), nil
	}
	// The split owner announces the instance partition (standard SecureBoost
	// information flow).
	if m.ctx != nil && best.party != 0 {
		if err := m.send(hostName(best.party), hostName(0), "split", int64(8*len(samples))); err != nil {
			return nil, err
		}
	}
	l, err := m.growNode(left, g, h, cts, n, depth+1)
	if err != nil {
		return nil, err
	}
	r, err := m.growNode(right, g, h, cts, n, depth+1)
	if err != nil {
		return nil, err
	}
	return &sbtNode{Party: best.party, Feature: best.feature, Threshold: best.threshold, Left: l, Right: r}, nil
}

type splitCandidate struct {
	party     int
	feature   int
	threshold float64
	gain      float64
}

// partyBestSplit builds party p's histograms for the node and returns its
// best candidate. The guest (p=0) works in plaintext on its own features;
// hosts aggregate homomorphically and round-trip through the guest.
func (m *HeteroSBT) partyBestSplit(p int, samples []int, g, h []float64, cts []paillier.Ciphertext, n int, gTot, hTot float64) (splitCandidate, error) {
	part := m.parts[p]
	best := splitCandidate{party: p, feature: -1, gain: m.Gamma}

	for j := 0; j < part.NumFeatures; j++ {
		lo, hi, present := m.featureRange(p, j, samples)
		if len(present) < 2 || lo == hi {
			continue
		}
		width := (hi - lo) / float64(m.Bins)
		binOf := func(x float64) int {
			b := int((x - lo) / width)
			if b >= m.Bins {
				b = m.Bins - 1
			}
			if b < 0 {
				b = 0
			}
			return b
		}
		// Per-bin sample lists.
		bins := make([][]int, m.Bins)
		for _, s := range present {
			b := binOf(m.featureValue(p, j, s))
			bins[b] = append(bins[b], s)
		}

		gBins := make([]float64, m.Bins)
		hBins := make([]float64, m.Bins)
		cnts := make([]int, m.Bins)
		if p == 0 || m.ctx == nil {
			// Guest-side plaintext histograms.
			for b, list := range bins {
				cnts[b] = len(list)
				gBins[b], hBins[b] = sumGH(list, g, h)
			}
		} else {
			// Host-side encrypted histograms: one homomorphic subset sum
			// per non-empty bin, sent to the guest for decryption.
			var histCts []paillier.Ciphertext
			var histIdx []int
			for b, list := range bins {
				cnts[b] = len(list)
				if len(list) == 0 {
					continue
				}
				sel := make([]paillier.Ciphertext, 0, len(list)*2)
				for _, s := range list {
					sel = append(sel, m.ghRefs(cts, n, s)...)
				}
				var sums []paillier.Ciphertext
				if m.ctx.Packer != nil {
					sum, err := m.ctx.ReduceSum(sel)
					if err != nil {
						return best, err
					}
					sums = []paillier.Ciphertext{sum}
				} else {
					gh := len(sel) / 2
					gs := make([]paillier.Ciphertext, 0, gh)
					hs := make([]paillier.Ciphertext, 0, gh)
					for k := 0; k < len(sel); k += 2 {
						gs = append(gs, sel[k])
						hs = append(hs, sel[k+1])
					}
					gSum, err := m.ctx.ReduceSum(gs)
					if err != nil {
						return best, err
					}
					hSum, err := m.ctx.ReduceSum(hs)
					if err != nil {
						return best, err
					}
					sums = []paillier.Ciphertext{gSum, hSum}
				}
				histCts = append(histCts, sums...)
				histIdx = append(histIdx, b)
			}
			if len(histCts) == 0 {
				continue
			}
			if err := m.send(hostName(p), hostName(0), "hist", ciphertextBytes(m.ctx, len(histCts))); err != nil {
				return best, err
			}
			raws, err := m.ctx.DecryptRaw(histCts)
			if err != nil {
				return best, err
			}
			per := len(histCts) / len(histIdx)
			for k, b := range histIdx {
				gBins[b], hBins[b] = m.decodeGH(raws[k*per:(k+1)*per], cnts[b])
			}
		}

		// Scan split points left-to-right (zeros/missing stay left of bin 0
		// implicitly via the node totals).
		gPresent, hPresent := 0.0, 0.0
		for b := 0; b < m.Bins; b++ {
			gPresent += gBins[b]
			hPresent += hBins[b]
		}
		gMissing, hMissing := gTot-gPresent, hTot-hPresent
		gl, hl := gMissing, hMissing // missing values go left
		for b := 0; b < m.Bins-1; b++ {
			gl += gBins[b]
			hl += hBins[b]
			gr, hr := gTot-gl, hTot-hl
			gain := m.gain(gl, hl, gr, hr, gTot, hTot)
			if gain > best.gain {
				best = splitCandidate{
					party:     p,
					feature:   j,
					threshold: lo + width*float64(b+1),
					gain:      gain,
				}
			}
		}
	}
	return best, nil
}

// gain is the XGBoost split score.
func (m *HeteroSBT) gain(gl, hl, gr, hr, gTot, hTot float64) float64 {
	return 0.5 * (gl*gl/(hl+m.Lambda) + gr*gr/(hr+m.Lambda) - gTot*gTot/(hTot+m.Lambda))
}

func (m *HeteroSBT) leaf(gSum, hSum float64) *sbtNode {
	return &sbtNode{Leaf: true, Weight: -gSum / (hSum + m.Lambda)}
}

// featureRange returns the min/max of feature j among node samples where it
// is present, plus the present-sample list.
func (m *HeteroSBT) featureRange(p, j int, samples []int) (lo, hi float64, present []int) {
	first := true
	for _, s := range samples {
		v, ok := m.lookup(p, j, s)
		if !ok {
			continue
		}
		present = append(present, s)
		if first || v < lo {
			lo = v
		}
		if first || v > hi {
			hi = v
		}
		first = false
	}
	return lo, hi, present
}

// lookup finds feature j of party p in sample s (sparse search).
func (m *HeteroSBT) lookup(p, j, s int) (float64, bool) {
	fv := m.parts[p].Examples[s].Features
	loI, hiI := 0, len(fv.Idx)
	for loI < hiI {
		mid := (loI + hiI) / 2
		switch {
		case fv.Idx[mid] == int32(j):
			return fv.Val[mid], true
		case fv.Idx[mid] < int32(j):
			loI = mid + 1
		default:
			hiI = mid
		}
	}
	return 0, false
}

func (m *HeteroSBT) featureValue(p, j, s int) float64 {
	v, _ := m.lookup(p, j, s)
	return v
}

// partition splits node samples by the winning candidate (missing → left).
func (m *HeteroSBT) partition(c splitCandidate, samples []int) (left, right []int) {
	for _, s := range samples {
		v, ok := m.lookup(c.party, c.feature, s)
		if !ok || v <= c.threshold {
			left = append(left, s)
		} else {
			right = append(right, s)
		}
	}
	return left, right
}

// buildPlain is the plaintext oracle of growNode (identical split logic).
func (m *HeteroSBT) buildPlain(samples []int, g, h []float64, depth int) *sbtNode {
	gTot, hTot := sumGH(samples, g, h)
	if depth >= m.MaxDepth || len(samples) < 4 {
		return m.leaf(gTot, hTot)
	}
	best := splitCandidate{feature: -1, gain: m.Gamma}
	for p := range m.parts {
		cand, _ := m.partyBestSplit(p, samples, g, h, nil, 0, gTot, hTot)
		if cand.gain > best.gain {
			best = cand
		}
	}
	if best.gain <= m.Gamma || best.feature < 0 {
		return m.leaf(gTot, hTot)
	}
	left, right := m.partition(best, samples)
	if len(left) == 0 || len(right) == 0 {
		return m.leaf(gTot, hTot)
	}
	return &sbtNode{
		Party: best.party, Feature: best.feature, Threshold: best.threshold,
		Left:  m.buildPlain(left, g, h, depth+1),
		Right: m.buildPlain(right, g, h, depth+1),
	}
}

// predictTree traverses one tree for sample i.
func (m *HeteroSBT) predictTree(node *sbtNode, i int) float64 {
	for !node.Leaf {
		v, ok := m.lookup(node.Party, node.Feature, i)
		if !ok || v <= node.Threshold {
			node = node.Left
		} else {
			node = node.Right
		}
	}
	return node.Weight
}

func sumGH(samples []int, g, h []float64) (gs, hs float64) {
	for _, s := range samples {
		gs += g[s]
		hs += h[s]
	}
	return gs, hs
}

// send routes a protocol message, charging communication (no-op in oracle
// mode where m.net is nil — callers guard, but double-check here).
func (m *HeteroSBT) send(from, to, kind string, payloadBytes int64) error {
	if m.net == nil {
		return nil
	}
	msg := flnet.Message{From: from, To: to, Kind: kind, Payload: make([]byte, payloadBytes)}
	if err := m.net.Send(msg); err != nil {
		return err
	}
	if _, err := m.net.Recv(to); err != nil {
		return err
	}
	m.ctx.RecordTransfer(msg.WireSize())
	return nil
}

// Close releases the transport.
func (m *HeteroSBT) Close() error {
	if m.net == nil {
		return nil
	}
	return m.net.Close()
}
