package models

import (
	"fmt"

	"flbooster/internal/datasets"
	"flbooster/internal/fl"
	"flbooster/internal/flnet"
	"flbooster/internal/mpint"
	"flbooster/internal/paillier"
)

// HeteroNN is a vertically federated neural network with an HE-protected
// interactive layer (FATE's Hetero NN shape). Guest and hosts each own a
// linear bottom tower mapping their feature slice to a shared hidden width;
// the interactive layer merges the towers additively under encryption and
// the guest's top model produces the prediction:
//
//	a_p = W_p · x_p                      (bottom towers, per party)
//	z   = Σ_p a_p + b                    (interactive layer, HE-aggregated)
//	m   = σ(z)                           (hidden activation, guest)
//	ŷ   = σ(w_top · m)                   (top model, guest)
//
// Forward activations are an *aggregatable* flow (batch-compressible);
// backward per-sample hidden deltas E(δ) travel one ciphertext per value and
// drive the hosts' homomorphic weight-gradient accumulation, mirroring the
// Hetero LR gradient step per hidden unit.
type HeteroNN struct {
	opts  Options
	ctx   *fl.Context // nil in plaintext-oracle mode
	net   flnet.Transport
	parts []*datasets.Dataset
	full  *datasets.Dataset

	// Hidden is the interactive-layer width.
	Hidden int
	// W[p] is party p's bottom tower, Hidden × dim_p (row-major by unit).
	W [][]float64
	// HiddenBias and Top are guest-held.
	HiddenBias []float64
	Top        []float64
	TopBias    float64

	actScale   float64 // activation normalization for the quantizer
	fixedPoint float64 // feature fixed-point scale (as in HeteroLR)

	optW   []Optimizer // per-party bottom-tower optimizers
	optTop Optimizer   // guest head: [Top..., HiddenBias..., TopBias]
}

// NewHeteroNN partitions ds vertically and initializes a two-tower network
// with the given hidden width.
func NewHeteroNN(ctx *fl.Context, ds *datasets.Dataset, hidden int, opts Options) (*HeteroNN, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if hidden < 1 {
		return nil, fmt.Errorf("models: hidden width must be positive, got %d", hidden)
	}
	parties := oracleParties(opts)
	if ctx != nil {
		parties = ctx.Profile.Parties
	}
	parts, err := datasets.PartitionVertical(ds, parties)
	if err != nil {
		return nil, fmt.Errorf("models: HeteroNN partition: %w", err)
	}
	m := &HeteroNN{
		opts:       opts,
		ctx:        ctx,
		parts:      parts,
		full:       ds,
		Hidden:     hidden,
		W:          make([][]float64, parties),
		HiddenBias: make([]float64, hidden),
		Top:        make([]float64, hidden),
		actScale:   8,
		fixedPoint: 128,
	}
	rng := mpint.NewRNG(opts.Seed ^ 0xA5A5)
	m.optW = make([]Optimizer, parties)
	m.optTop = newOptimizer(opts)
	for p, part := range parts {
		m.W[p] = make([]float64, hidden*part.NumFeatures)
		for i := range m.W[p] {
			m.W[p][i] = rng.NormFloat64() * 0.05
		}
		m.optW[p] = newOptimizer(opts)
	}
	for i := range m.Top {
		m.Top[i] = rng.NormFloat64() * 0.3
	}
	if ctx != nil {
		names := make([]string, 0, parties+1)
		for p := 0; p < parties; p++ {
			names = append(names, hostName(p))
		}
		names = append(names, arbiterName)
		m.net = flnet.NewSimTransport(ctx.Link, names...)
	}
	return m, nil
}

// Name implements Model.
func (m *HeteroNN) Name() string { return "Hetero NN" }

// bottomForward computes party p's activations for rows [lo, hi):
// a[i][u] = Σ_j W_p[u,j]·x_ij, flattened sample-major.
func (m *HeteroNN) bottomForward(p, lo, hi int) []float64 {
	part := m.parts[p]
	dim := part.NumFeatures
	out := make([]float64, (hi-lo)*m.Hidden)
	for i := lo; i < hi; i++ {
		fv := part.Examples[i].Features
		row := out[(i-lo)*m.Hidden:]
		for u := 0; u < m.Hidden; u++ {
			wRow := m.W[p][u*dim : (u+1)*dim]
			var s float64
			for k, j := range fv.Idx {
				s += fv.Val[k] * wRow[j]
			}
			row[u] = s
		}
	}
	return out
}

// forwardPlain runs the full network for rows [lo, hi), returning hidden
// activations and predictions.
func (m *HeteroNN) forwardPlain(lo, hi int) (hiddenAct, preds []float64) {
	n := hi - lo
	z := make([]float64, n*m.Hidden)
	for p := range m.parts {
		a := m.bottomForward(p, lo, hi)
		for i := range z {
			z[i] += a[i]
		}
	}
	hiddenAct = make([]float64, n*m.Hidden)
	preds = make([]float64, n)
	for i := 0; i < n; i++ {
		var logit float64
		for u := 0; u < m.Hidden; u++ {
			h := datasets.Sigmoid(z[i*m.Hidden+u] + m.HiddenBias[u])
			hiddenAct[i*m.Hidden+u] = h
			logit += h * m.Top[u]
		}
		preds[i] = datasets.Sigmoid(logit + m.TopBias)
	}
	return hiddenAct, preds
}

// Loss implements Model.
func (m *HeteroNN) Loss() float64 {
	_, preds := m.forwardPlain(0, m.full.Len())
	var loss float64
	for i, ex := range m.full.Examples {
		loss += crossEntropy(preds[i], ex.Label)
	}
	return loss / float64(m.full.Len())
}

// TrainEpoch implements Model.
func (m *HeteroNN) TrainEpoch() (float64, error) {
	for _, r := range m.full.Batches(m.opts.BatchSize) {
		if err := m.trainBatch(r[0], r[1]); err != nil {
			return 0, err
		}
	}
	return m.Loss(), nil
}

func (m *HeteroNN) trainBatch(lo, hi int) error {
	if m.ctx == nil {
		m.trainBatchPlain(lo, hi)
		return nil
	}
	parties := len(m.parts)
	n := hi - lo

	// Forward, interactive layer: every party encrypts its activation block
	// (normalized into the quantizer interval), the guest aggregates
	// homomorphically, and the arbiter decrypts the merged pre-activations.
	acts := make([][]float64, parties)
	m.ctx.TrackOther(func() {
		for p := 0; p < parties; p++ {
			acts[p] = m.bottomForward(p, lo, hi)
		}
	})
	batches := make([][]paillier.Ciphertext, parties)
	for p := 0; p < parties; p++ {
		norm := make([]float64, len(acts[p]))
		for i, a := range acts[p] {
			norm[i] = clampGrad(a/m.actScale, m.ctx.Quant.Alpha())
		}
		cts, err := m.ctx.EncryptGradients(norm)
		if err != nil {
			return fmt.Errorf("models: party %d activation encrypt: %w", p, err)
		}
		if p != 0 {
			if err := m.send(hostName(p), hostName(0), "acts", ciphertextBytes(m.ctx, len(cts))); err != nil {
				return err
			}
		}
		batches[p] = cts
	}
	agg, err := m.ctx.AggregateCiphertexts(batches)
	if err != nil {
		return err
	}
	if err := m.send(hostName(0), arbiterName, "act-agg", ciphertextBytes(m.ctx, len(agg))); err != nil {
		return err
	}
	z, err := m.ctx.DecryptAggregated(agg, n*m.Hidden, parties)
	if err != nil {
		return err
	}
	if err := m.send(arbiterName, hostName(0), "act-plain", int64(8*len(z))); err != nil {
		return err
	}
	for i := range z {
		z[i] *= m.actScale
	}

	// Guest: top model forward + backward; hidden deltas.
	deltas := make([]float64, n*m.Hidden) // δ w.r.t. pre-activation z
	m.ctx.TrackOther(func() {
		m.topStep(z, deltas, lo, hi)
	})

	// Backward to hosts: per-sample encrypted deltas per hidden unit.
	bound := m.ctx.Quant.Alpha()
	clamped := make([]float64, len(deltas))
	for i, d := range deltas {
		clamped[i] = clampGrad(d, bound)
	}
	encD, err := m.ctx.EncryptValuesUnpacked(clamped)
	if err != nil {
		return err
	}
	for p := 1; p < parties; p++ {
		if err := m.send(hostName(0), hostName(p), "deltas", ciphertextBytes(m.ctx, len(encD))); err != nil {
			return err
		}
	}

	// Every party accumulates its bottom-tower gradient homomorphically and
	// round-trips the sums through the arbiter (guest computes in plaintext
	// since it owns the deltas).
	for p := 0; p < parties; p++ {
		if p == 0 {
			m.ctx.TrackOther(func() { m.guestBottomUpdate(deltas, lo, hi) })
			continue
		}
		if err := m.hostBottomUpdate(p, encD, lo, hi); err != nil {
			return fmt.Errorf("models: party %d bottom update: %w", p, err)
		}
	}
	return nil
}

// topStep computes the guest-side forward through the top model, updates the
// top weights, and fills the hidden-layer deltas.
func (m *HeteroNN) topStep(z, deltas []float64, lo, hi int) {
	n := hi - lo
	gradTop := make([]float64, m.Hidden)
	var gradTopBias float64
	hb := make([]float64, m.Hidden)
	for i := 0; i < n; i++ {
		var logit float64
		hAct := make([]float64, m.Hidden)
		for u := 0; u < m.Hidden; u++ {
			h := datasets.Sigmoid(z[i*m.Hidden+u] + m.HiddenBias[u])
			hAct[u] = h
			logit += h * m.Top[u]
		}
		p := datasets.Sigmoid(logit + m.TopBias)
		dOut := (p - m.full.Examples[lo+i].Label) / float64(n)
		gradTopBias += dOut
		for u := 0; u < m.Hidden; u++ {
			gradTop[u] += dOut * hAct[u]
			d := dOut * m.Top[u] * hAct[u] * (1 - hAct[u])
			deltas[i*m.Hidden+u] = d * float64(n) // per-sample (mean applied later)
			hb[u] += d
		}
	}
	// One optimizer step over the guest head [Top..., HiddenBias..., TopBias].
	params := make([]float64, 2*m.Hidden+1)
	grads := make([]float64, 2*m.Hidden+1)
	copy(params, m.Top)
	copy(params[m.Hidden:], m.HiddenBias)
	params[2*m.Hidden] = m.TopBias
	for u := 0; u < m.Hidden; u++ {
		grads[u] = gradTop[u] + m.opts.L2*m.Top[u]
		grads[m.Hidden+u] = hb[u]
	}
	grads[2*m.Hidden] = gradTopBias
	m.optTop.Step(params, grads)
	copy(m.Top, params[:m.Hidden])
	copy(m.HiddenBias, params[m.Hidden:2*m.Hidden])
	m.TopBias = params[2*m.Hidden]
	// Rescale deltas to per-sample means for the weight gradients.
	for i := range deltas {
		deltas[i] /= float64(n)
	}
}

// guestBottomUpdate applies the guest tower's gradient in plaintext.
func (m *HeteroNN) guestBottomUpdate(deltas []float64, lo, hi int) {
	part := m.parts[0]
	dim := part.NumFeatures
	grads := make([]float64, m.Hidden*dim)
	for i := lo; i < hi; i++ {
		fv := part.Examples[i].Features
		for u := 0; u < m.Hidden; u++ {
			d := deltas[(i-lo)*m.Hidden+u]
			if d == 0 {
				continue
			}
			row := grads[u*dim : (u+1)*dim]
			for k, j := range fv.Idx {
				row[j] += d * fv.Val[k]
			}
		}
	}
	for i := range grads {
		grads[i] += m.opts.L2 * m.W[0][i]
	}
	m.optW[0].Step(m.W[0], grads)
}

// hostBottomUpdate runs the encrypted gradient accumulation for one host:
// for each (hidden unit u, feature j), Σ_i E(δ_iu)^{x̃_ij}, arbiter decrypts,
// host unshifts and applies SGD — the Hetero LR step per hidden unit.
func (m *HeteroNN) hostBottomUpdate(p int, encD []paillier.Ciphertext, lo, hi int) error {
	part := m.parts[p]
	dim := part.NumFeatures

	var cts []paillier.Ciphertext
	type pending struct {
		unit, feature int
		neg           bool
		corr          float64
	}
	var meta []pending
	for u := 0; u < m.Hidden; u++ {
		type acc struct {
			pos, neg   []int
			posW, negW []uint64
			posX, negX float64
		}
		accums := make([]acc, dim)
		for i := lo; i < hi; i++ {
			fv := part.Examples[i].Features
			for k, j := range fv.Idx {
				x := fv.Val[k]
				fp := uint64(absFloat(x)*m.fixedPoint + 0.5)
				if fp == 0 {
					continue
				}
				a := &accums[j]
				if x > 0 {
					a.pos = append(a.pos, (i-lo)*m.Hidden+u)
					a.posW = append(a.posW, fp)
					a.posX += float64(fp)
				} else {
					a.neg = append(a.neg, (i-lo)*m.Hidden+u)
					a.negW = append(a.negW, fp)
					a.negX += float64(fp)
				}
			}
		}
		for j := 0; j < dim; j++ {
			a := &accums[j]
			if len(a.pos) > 0 {
				ct, err := m.weightedSum(encD, a.pos, a.posW)
				if err != nil {
					return err
				}
				cts = append(cts, ct)
				meta = append(meta, pending{unit: u, feature: j, corr: a.posX})
			}
			if len(a.neg) > 0 {
				ct, err := m.weightedSum(encD, a.neg, a.negW)
				if err != nil {
					return err
				}
				cts = append(cts, ct)
				meta = append(meta, pending{unit: u, feature: j, neg: true, corr: a.negX})
			}
		}
	}
	if len(cts) == 0 {
		return nil
	}
	if err := m.send(hostName(p), arbiterName, "nn-grad", ciphertextBytes(m.ctx, len(cts))); err != nil {
		return err
	}
	raws, err := m.ctx.DecryptRaw(cts)
	if err != nil {
		return err
	}
	if err := m.send(arbiterName, hostName(p), "nn-grad-plain", int64(8*len(raws))); err != nil {
		return err
	}
	grads := make([]float64, m.Hidden*dim)
	alpha := m.ctx.Quant.Alpha()
	mq := float64(uint64(1)<<m.ctx.Quant.RBits() - 1)
	for k, raw := range raws {
		v := (2*alpha/mq)*float64(raw) - alpha*meta[k].corr
		if meta[k].neg {
			v = -v
		}
		grads[meta[k].unit*dim+meta[k].feature] += v
	}
	scale := 1 / m.fixedPoint
	m.ctx.TrackOther(func() {
		for i := range grads {
			grads[i] = grads[i]*scale + m.opts.L2*m.W[p][i]
		}
		m.optW[p].Step(m.W[p], grads)
	})
	return nil
}

// weightedSum mirrors HeteroLR.weightedSum.
func (m *HeteroNN) weightedSum(encD []paillier.Ciphertext, idx []int, w []uint64) (paillier.Ciphertext, error) {
	sel := make([]paillier.Ciphertext, len(idx))
	for k, i := range idx {
		sel[k] = encD[i]
	}
	return m.ctx.WeightedSum(sel, w)
}

// trainBatchPlain is the oracle backward pass (identical math, no HE).
func (m *HeteroNN) trainBatchPlain(lo, hi int) {
	n := hi - lo
	z := make([]float64, n*m.Hidden)
	for p := range m.parts {
		a := m.bottomForward(p, lo, hi)
		for i := range z {
			z[i] += a[i]
		}
	}
	deltas := make([]float64, n*m.Hidden)
	m.topStep(z, deltas, lo, hi)
	for p, part := range m.parts {
		dim := part.NumFeatures
		grads := make([]float64, m.Hidden*dim)
		for i := lo; i < hi; i++ {
			fv := part.Examples[i].Features
			for u := 0; u < m.Hidden; u++ {
				d := deltas[(i-lo)*m.Hidden+u]
				if d == 0 {
					continue
				}
				row := grads[u*dim : (u+1)*dim]
				for k, j := range fv.Idx {
					row[j] += d * fv.Val[k]
				}
			}
		}
		for i := range grads {
			grads[i] += m.opts.L2 * m.W[p][i]
		}
		m.optW[p].Step(m.W[p], grads)
	}
}

// send routes a protocol message, charging communication.
func (m *HeteroNN) send(from, to, kind string, payloadBytes int64) error {
	msg := flnet.Message{From: from, To: to, Kind: kind, Payload: make([]byte, payloadBytes)}
	if err := m.net.Send(msg); err != nil {
		return err
	}
	if _, err := m.net.Recv(to); err != nil {
		return err
	}
	m.ctx.RecordTransfer(msg.WireSize())
	return nil
}

// Close releases the transport.
func (m *HeteroNN) Close() error {
	if m.net == nil {
		return nil
	}
	return m.net.Close()
}
