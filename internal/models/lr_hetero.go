package models

import (
	"fmt"

	"flbooster/internal/datasets"
	"flbooster/internal/fl"
	"flbooster/internal/flnet"
	"flbooster/internal/paillier"
)

// HeteroLR is vertically federated logistic regression following the FATE
// protocol shape (§VI, Hetero LR). Party 0 is the guest (labels plus its
// feature slice); the remaining parties are hosts; the arbiter holds the
// Paillier private key.
//
// Per minibatch:
//
//  1. every party computes partial scores z_p = w_p·x_p locally;
//  2. parties encrypt z_p and the guest aggregates the ciphertexts
//     homomorphically (an *aggregatable* flow — packed under batch
//     compression), forwarding the encrypted sum to the arbiter, which
//     decrypts and returns the plaintext scores to the guest;
//  3. the guest computes exact residuals d = σ(z) − y, encrypts them one
//     ciphertext per sample (per-sample flow, never packed), and broadcasts
//     E(d) to the hosts;
//  4. every party accumulates its encrypted gradient ∑ᵢ E(dᵢ)^{x̃ᵢⱼ} with
//     fixed-point feature values x̃, sign-split so negative features stay in
//     the unsigned domain;
//  5. the arbiter decrypts the per-feature sums, each party removes the
//     quantization shift with its locally known correction term ∑ᵢ x̃ᵢⱼ and
//     applies the SGD step.
type HeteroLR struct {
	opts  Options
	ctx   *fl.Context // nil in plaintext-oracle mode
	net   flnet.Transport
	parts []*datasets.Dataset
	full  *datasets.Dataset

	// W holds each party's weight slice; offsets map into the full space.
	W       [][]float64
	offsets []int
	// Bias is the guest-held intercept.
	Bias float64

	opts2 []Optimizer // per-party weight optimizers
	optB  Optimizer   // guest bias optimizer

	// zScale bounds partial scores into the quantizer's interval.
	zScale float64
	// fixedPoint is F, the feature fixed-point scale for x̃ = round(|x|·F).
	fixedPoint float64
}

// Party names for the vertical topology.
const arbiterName = "arbiter"

func hostName(p int) string { return fmt.Sprintf("party%d", p) }

// NewHeteroLR partitions ds vertically across the context's parties.
func NewHeteroLR(ctx *fl.Context, ds *datasets.Dataset, opts Options) (*HeteroLR, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	parties := oracleParties(opts)
	if ctx != nil {
		parties = ctx.Profile.Parties
	}
	parts, err := datasets.PartitionVertical(ds, parties)
	if err != nil {
		return nil, fmt.Errorf("models: HeteroLR partition: %w", err)
	}
	m := &HeteroLR{
		opts:       opts,
		ctx:        ctx,
		parts:      parts,
		full:       ds,
		W:          make([][]float64, parties),
		offsets:    make([]int, parties),
		zScale:     8,
		fixedPoint: 128,
	}
	off := 0
	m.opts2 = make([]Optimizer, parties)
	m.optB = newOptimizer(opts)
	for p, part := range parts {
		m.W[p] = make([]float64, part.NumFeatures)
		m.offsets[p] = off
		off += part.NumFeatures
		m.opts2[p] = newOptimizer(opts)
	}
	if ctx != nil {
		names := make([]string, 0, parties+1)
		for p := 0; p < parties; p++ {
			names = append(names, hostName(p))
		}
		names = append(names, arbiterName)
		m.net = flnet.NewSimTransport(ctx.Link, names...)
	}
	return m, nil
}

// Name implements Model.
func (m *HeteroLR) Name() string { return "Hetero LR" }

// fullWeights concatenates per-party slices into the original feature order.
func (m *HeteroLR) fullWeights() []float64 {
	w := make([]float64, m.full.NumFeatures)
	for p, wp := range m.W {
		copy(w[m.offsets[p]:], wp)
	}
	return w
}

// Loss implements Model.
func (m *HeteroLR) Loss() float64 { return logisticLoss(m.fullWeights(), m.Bias, m.full) }

// TrainEpoch implements Model.
func (m *HeteroLR) TrainEpoch() (float64, error) {
	for _, r := range m.full.Batches(m.opts.BatchSize) {
		if err := m.trainBatch(r[0], r[1]); err != nil {
			return 0, err
		}
	}
	return m.Loss(), nil
}

// partialScores computes z_p for rows [lo, hi) of party p.
func (m *HeteroLR) partialScores(p, lo, hi int) []float64 {
	z := make([]float64, hi-lo)
	for i := lo; i < hi; i++ {
		z[i-lo] = m.parts[p].Examples[i].Features.Dot(m.W[p])
	}
	if p == 0 {
		for i := range z {
			z[i] += m.Bias
		}
	}
	return z
}

// residuals computes d = σ(z) − y on the guest, clamped to the quantizer's
// representable interval.
func (m *HeteroLR) residuals(z []float64, lo int) []float64 {
	bound := trainCtx{m.ctx}.gradBound()
	d := make([]float64, len(z))
	for i := range z {
		d[i] = clampGrad(datasets.Sigmoid(z[i])-m.parts[0].Examples[lo+i].Label, bound)
	}
	return d
}

func (m *HeteroLR) trainBatch(lo, hi int) error {
	if m.ctx == nil {
		return m.trainBatchPlain(lo, hi)
	}
	parties := len(m.parts)
	n := hi - lo

	// Step 1: local partial scores (model compute).
	zs := make([][]float64, parties)
	m.ctx.TrackOther(func() {
		for p := 0; p < parties; p++ {
			zs[p] = m.partialScores(p, lo, hi)
		}
	})

	// Step 2: encrypted score aggregation — the packable flow. Scores are
	// normalized by zScale to fit the quantizer's interval.
	batches := make([][]paillier.Ciphertext, parties)
	for p := 0; p < parties; p++ {
		norm := make([]float64, n)
		for i, z := range zs[p] {
			norm[i] = clampGrad(z/m.zScale, m.ctx.Quant.Alpha())
		}
		cts, err := m.ctx.EncryptGradients(norm)
		if err != nil {
			return fmt.Errorf("models: party %d score encrypt: %w", p, err)
		}
		if p != 0 {
			if err := m.send(hostName(p), hostName(0), "scores", ciphertextBytes(m.ctx, len(cts))); err != nil {
				return err
			}
		}
		batches[p] = cts
	}
	agg, err := m.ctx.AggregateCiphertexts(batches)
	if err != nil {
		return err
	}
	if err := m.send(hostName(0), arbiterName, "score-agg", ciphertextBytes(m.ctx, len(agg))); err != nil {
		return err
	}
	zsum, err := m.ctx.DecryptAggregated(agg, n, parties)
	if err != nil {
		return err
	}
	for i := range zsum {
		zsum[i] *= m.zScale
	}
	if err := m.send(arbiterName, hostName(0), "scores-plain", int64(8*n)); err != nil {
		return err
	}

	// Step 3: guest residuals, encrypted per sample.
	var d []float64
	m.ctx.TrackOther(func() { d = m.residuals(zsum, lo) })
	encD, err := m.ctx.EncryptValuesUnpacked(d)
	if err != nil {
		return err
	}
	for p := 1; p < parties; p++ {
		if err := m.send(hostName(0), hostName(p), "residuals", ciphertextBytes(m.ctx, len(encD))); err != nil {
			return err
		}
	}

	// Steps 4–5: per-party homomorphic gradient, arbiter decryption, update.
	for p := 0; p < parties; p++ {
		if err := m.partyGradientStep(p, lo, hi, encD); err != nil {
			return fmt.Errorf("models: party %d gradient: %w", p, err)
		}
	}

	// Guest bias update from the plaintext residuals it already holds.
	m.ctx.TrackOther(func() {
		m.biasStep(d, n)
	})
	return nil
}

// biasStep applies the intercept update through the guest's optimizer.
func (m *HeteroLR) biasStep(d []float64, n int) {
	var db float64
	for _, v := range d {
		db += v
	}
	params := []float64{m.Bias}
	m.optB.Step(params, []float64{db / float64(n)})
	m.Bias = params[0]
}

// partyGradientStep runs steps 4–5 for one party: encrypted weighted sums
// per feature, arbiter round trip, shift correction, SGD update.
func (m *HeteroLR) partyGradientStep(p, lo, hi int, encD []paillier.Ciphertext) error {
	part := m.parts[p]
	n := hi - lo
	dim := part.NumFeatures

	// Gather per-feature weighted terms, sign-split.
	type accum struct {
		pos, neg   []int    // sample offsets
		posW, negW []uint64 // fixed-point |x|
		posX, negX float64  // correction sums Σx̃
	}
	accums := make([]accum, dim)
	for i := lo; i < hi; i++ {
		fv := part.Examples[i].Features
		for k, j := range fv.Idx {
			x := fv.Val[k]
			fp := uint64(absFloat(x)*m.fixedPoint + 0.5)
			if fp == 0 {
				continue
			}
			a := &accums[j]
			if x > 0 {
				a.pos = append(a.pos, i-lo)
				a.posW = append(a.posW, fp)
				a.posX += float64(fp)
			} else {
				a.neg = append(a.neg, i-lo)
				a.negW = append(a.negW, fp)
				a.negX += float64(fp)
			}
		}
	}

	// Homomorphic weighted sums. Collect ciphertexts for the arbiter.
	var cts []paillier.Ciphertext
	type pending struct {
		feature int
		neg     bool
		corr    float64
	}
	var meta []pending
	for j := 0; j < dim; j++ {
		a := &accums[j]
		if len(a.pos) > 0 {
			ct, err := m.weightedSum(encD, a.pos, a.posW)
			if err != nil {
				return err
			}
			cts = append(cts, ct)
			meta = append(meta, pending{feature: j, corr: a.posX})
		}
		if len(a.neg) > 0 {
			ct, err := m.weightedSum(encD, a.neg, a.negW)
			if err != nil {
				return err
			}
			cts = append(cts, ct)
			meta = append(meta, pending{feature: j, neg: true, corr: a.negX})
		}
	}

	grads := make([]float64, dim)
	if len(cts) > 0 {
		if err := m.send(hostName(p), arbiterName, "grad-sums", ciphertextBytes(m.ctx, len(cts))); err != nil {
			return err
		}
		raws, err := m.ctx.DecryptRaw(cts)
		if err != nil {
			return err
		}
		if err := m.send(arbiterName, hostName(p), "grad-plain", int64(8*len(raws))); err != nil {
			return err
		}
		// Decode: Σ dᵢ·x̃ᵢⱼ = (2α/M)·S − α·Σx̃ (per sign), then /(F·n).
		alpha := m.ctx.Quant.Alpha()
		mq := float64(uint64(1)<<m.ctx.Quant.RBits() - 1)
		for k, raw := range raws {
			v := (2*alpha/mq)*float64(raw) - alpha*meta[k].corr
			if meta[k].neg {
				v = -v
			}
			grads[meta[k].feature] += v
		}
		scale := 1 / (m.fixedPoint * float64(n))
		for j := range grads {
			grads[j] *= scale
		}
	}
	m.ctx.TrackOther(func() {
		for j := range grads {
			grads[j] += m.opts.L2 * m.W[p][j]
		}
		m.opts2[p].Step(m.W[p], grads)
	})
	return nil
}

// weightedSum selects sample offsets from encD and runs the homomorphic
// multiply-accumulate.
func (m *HeteroLR) weightedSum(encD []paillier.Ciphertext, idx []int, w []uint64) (paillier.Ciphertext, error) {
	sel := make([]paillier.Ciphertext, len(idx))
	for k, i := range idx {
		sel[k] = encD[i]
	}
	return m.ctx.WeightedSum(sel, w)
}

// trainBatchPlain is the oracle: exact vertical SGD without encryption.
func (m *HeteroLR) trainBatchPlain(lo, hi int) error {
	n := hi - lo
	z := make([]float64, n)
	for p := range m.parts {
		zp := m.partialScores(p, lo, hi)
		for i := range z {
			z[i] += zp[i]
		}
	}
	d := m.residuals(z, lo)
	for p, part := range m.parts {
		grads := make([]float64, part.NumFeatures)
		for i := lo; i < hi; i++ {
			part.Examples[i].Features.AddScaledInto(grads, d[i-lo]/float64(n))
		}
		for j := range grads {
			grads[j] += m.opts.L2 * m.W[p][j]
		}
		m.opts2[p].Step(m.W[p], grads)
	}
	m.biasStep(d, n)
	return nil
}

// send routes a protocol message through the transport, charging the
// context's communication component.
func (m *HeteroLR) send(from, to, kind string, payloadBytes int64) error {
	msg := flnet.Message{From: from, To: to, Kind: kind, Payload: make([]byte, payloadBytes)}
	if err := m.net.Send(msg); err != nil {
		return err
	}
	if _, err := m.net.Recv(to); err != nil {
		return err
	}
	m.ctx.RecordTransfer(msg.WireSize())
	return nil
}

// Close releases the transport.
func (m *HeteroLR) Close() error {
	if m.net == nil {
		return nil
	}
	return m.net.Close()
}

// ciphertextBytes is the wire size of n ciphertexts under ctx's key.
func ciphertextBytes(ctx *fl.Context, n int) int64 { return ctx.CiphertextWireBytes(n) }

func absFloat(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
