package models

import (
	"sort"

	"flbooster/internal/datasets"
)

// Inference APIs: score unseen examples in the *original* (unpartitioned)
// feature space. In deployment each party would evaluate its slice and the
// guest would merge — numerically identical to the joint evaluation below,
// which the harness and examples use for held-out metrics.

// Predict returns P(y=1 | x) for one example under the Homo LR model.
func (m *HomoLR) Predict(ex datasets.Example) float64 {
	return datasets.Sigmoid(ex.Features.Dot(m.Weights) + m.Bias)
}

// FullWeights returns the joint weight vector in original feature order.
func (m *HeteroLR) FullWeights() []float64 { return m.fullWeights() }

// Predict returns P(y=1 | x) for one example under the Hetero LR model.
func (m *HeteroLR) Predict(ex datasets.Example) float64 {
	return datasets.Sigmoid(ex.Features.Dot(m.fullWeights()) + m.Bias)
}

// featureAt finds the value of original-space feature j in an example.
func featureAt(ex datasets.Example, j int32) (float64, bool) {
	k := sort.Search(len(ex.Features.Idx), func(i int) bool { return ex.Features.Idx[i] >= j })
	if k < len(ex.Features.Idx) && ex.Features.Idx[k] == j {
		return ex.Features.Val[k], true
	}
	return 0, false
}

// offsetsOf derives each party's offset into the original feature space
// from a contiguous vertical partition.
func offsetsOf(parts []*datasets.Dataset) []int {
	off := make([]int, len(parts))
	acc := 0
	for p, part := range parts {
		off[p] = acc
		acc += part.NumFeatures
	}
	return off
}

// Predict returns P(y=1 | x) under the boosted ensemble for an example in
// the original feature space.
func (m *HeteroSBT) Predict(ex datasets.Example) float64 {
	offs := offsetsOf(m.parts)
	var margin float64
	for _, tree := range m.Trees {
		node := tree
		for !node.Leaf {
			j := int32(offs[node.Party] + node.Feature)
			v, ok := featureAt(ex, j)
			if !ok || v <= node.Threshold {
				node = node.Left
			} else {
				node = node.Right
			}
		}
		margin += m.Eta * node.Weight
	}
	return datasets.Sigmoid(margin)
}

// Predict returns P(y=1 | x) under the two-tower network for an example in
// the original feature space.
func (m *HeteroNN) Predict(ex datasets.Example) float64 {
	offs := offsetsOf(m.parts)
	z := make([]float64, m.Hidden)
	for p, part := range m.parts {
		dim := part.NumFeatures
		lo := int32(offs[p])
		hi := lo + int32(dim)
		for k, j := range ex.Features.Idx {
			if j < lo || j >= hi {
				continue
			}
			local := int(j - lo)
			x := ex.Features.Val[k]
			for u := 0; u < m.Hidden; u++ {
				z[u] += x * m.W[p][u*dim+local]
			}
		}
	}
	var logit float64
	for u := 0; u < m.Hidden; u++ {
		logit += datasets.Sigmoid(z[u]+m.HiddenBias[u]) * m.Top[u]
	}
	return datasets.Sigmoid(logit + m.TopBias)
}

// EvaluateAccuracy scores a predictor over a dataset at the 0.5 threshold.
func EvaluateAccuracy(predict func(datasets.Example) float64, ds *datasets.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	var correct int
	for _, ex := range ds.Examples {
		pred := 0.0
		if predict(ex) >= 0.5 {
			pred = 1
		}
		if pred == ex.Label {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}
