package models

import "testing"

func TestSGDStep(t *testing.T) {
	opt := &SGD{LR: 0.1}
	params := []float64{1, 2}
	opt.Step(params, []float64{10, -10})
	if params[0] != 0 || params[1] != 3 {
		t.Fatalf("SGD step = %v", params)
	}
	opt.Reset() // no-op, must not panic
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(x) = (x−3)², starting far away; Adam must close the gap.
	opt := NewAdam(0.1)
	x := []float64{-5}
	for i := 0; i < 2000; i++ {
		g := []float64{2 * (x[0] - 3)}
		opt.Step(x, g)
	}
	if d := x[0] - 3; d > 0.05 || d < -0.05 {
		t.Fatalf("Adam converged to %v, want 3", x[0])
	}
}

func TestAdamBiasCorrectionFirstStep(t *testing.T) {
	// With bias correction, the very first step has magnitude ≈ lr
	// regardless of gradient scale.
	for _, scale := range []float64{1e-4, 1, 1e4} {
		opt := NewAdam(0.01)
		x := []float64{0}
		opt.Step(x, []float64{scale})
		if x[0] > -0.009 || x[0] < -0.011 {
			t.Fatalf("first Adam step at gradient scale %v moved %v, want ≈ -0.01", scale, x[0])
		}
	}
}

func TestAdamResetClearsState(t *testing.T) {
	opt := NewAdam(0.1)
	x := []float64{0}
	opt.Step(x, []float64{1})
	opt.Reset()
	y := []float64{0}
	opt.Step(y, []float64{1})
	if x[0] != y[0] {
		t.Fatalf("post-reset step %v differs from fresh step %v", y[0], x[0])
	}
}

func TestAdamReinitializesOnDimensionChange(t *testing.T) {
	opt := NewAdam(0.1)
	opt.Step([]float64{0}, []float64{1})
	// A different parameter length must not panic or reuse stale moments.
	params := []float64{0, 0, 0}
	opt.Step(params, []float64{1, 1, 1})
	for i, v := range params {
		if v >= 0 {
			t.Fatalf("param %d did not move: %v", i, v)
		}
	}
}

func TestSqrtF(t *testing.T) {
	for _, x := range []float64{0, 1e-12, 0.25, 1, 2, 1e6} {
		got := sqrtF(x)
		if d := got*got - x; d > 1e-9*(x+1) || d < -1e-9*(x+1) {
			t.Fatalf("sqrtF(%v) = %v", x, got)
		}
	}
}

func TestNewOptimizerSelection(t *testing.T) {
	o := DefaultOptions()
	if _, ok := newOptimizer(o).(*Adam); !ok {
		t.Fatal("default should be Adam (the paper's setting)")
	}
	o.UseSGD = true
	if _, ok := newOptimizer(o).(*SGD); !ok {
		t.Fatal("UseSGD should select SGD")
	}
}
