// Package models implements the paper's four benchmark federated learning
// models on top of the fl framework:
//
//   - Homo LR: horizontally partitioned logistic regression trained by
//     FedAvg with HE-protected gradient aggregation (Fig. 2).
//   - Hetero LR: vertically partitioned logistic regression with a guest
//     (labels + features), hosts (features only), and an arbiter holding the
//     Paillier key, following FATE's protocol shape: encrypted partial-score
//     aggregation, per-sample encrypted residuals, homomorphic gradient
//     accumulation, arbiter decryption.
//   - Hetero SBT: SecureBoost gradient-boosted decision trees — guest
//     encrypts per-sample gradient/hessian pairs, hosts build encrypted
//     split histograms, guest decrypts and selects splits.
//   - Hetero NN: a two-tower neural network with an HE-protected interactive
//     layer merging guest and host activations.
//
// Every model trains identically under each acceleration profile; only the
// HE backend, compression, and resource management differ — which is what
// makes the paper's system comparison meaningful. Passing a nil fl.Context
// trains in the plaintext oracle mode used for the convergence-bias metric
// (Table VII, Eq. 15).
package models

import (
	"fmt"

	"flbooster/internal/datasets"
	"flbooster/internal/fl"
)

// Model is a trainable federated model.
type Model interface {
	// Name identifies the model (matching the paper's tables).
	Name() string
	// TrainEpoch runs one epoch over the federated data and returns the
	// global training loss after the epoch.
	TrainEpoch() (float64, error)
	// Loss computes the current global training loss without updating.
	Loss() float64
}

// Options configures training shared by all models.
type Options struct {
	// LearningRate for SGD/Adam-style updates.
	LearningRate float64
	// L2 is the ridge penalty coefficient (paper default 0.01).
	L2 float64
	// BatchSize is the minibatch size (paper default 1024).
	BatchSize int
	// Seed drives initialization.
	Seed uint64
	// UseSGD selects plain SGD instead of the paper's default Adam.
	UseSGD bool
	// Parties sets the federation topology in plaintext-oracle mode (nil
	// context), so oracle and encrypted runs see identical partitions; with
	// a context the profile's party count always wins. Zero means 1.
	Parties int
}

// DefaultOptions mirrors the paper's parameter settings (§VI-B).
func DefaultOptions() Options {
	return Options{LearningRate: 0.1, L2: 0.01, BatchSize: 1024, Seed: 1}
}

func (o Options) validate() error {
	switch {
	case o.LearningRate <= 0:
		return fmt.Errorf("models: learning rate must be positive")
	case o.L2 < 0:
		return fmt.Errorf("models: L2 must be non-negative")
	case o.BatchSize < 1:
		return fmt.Errorf("models: batch size must be at least 1")
	}
	return nil
}

// oracleParties resolves the plaintext-oracle party count.
func oracleParties(o Options) int {
	if o.Parties > 0 {
		return o.Parties
	}
	return 1
}

// logisticLoss computes the mean log-loss of a linear model over a dataset.
func logisticLoss(w []float64, bias float64, ds *datasets.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	var loss float64
	for _, ex := range ds.Examples {
		z := ex.Features.Dot(w) + bias
		p := datasets.Sigmoid(z)
		loss += crossEntropy(p, ex.Label)
	}
	return loss / float64(ds.Len())
}

// crossEntropy is the per-example binary log-loss with probability clamping.
func crossEntropy(p, y float64) float64 {
	const eps = 1e-12
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	if y > 0.5 {
		return -datasets.Log(p)
	}
	return -datasets.Log(1 - p)
}

// clampGrad clips a gradient into the quantizer's representable interval.
func clampGrad(g, bound float64) float64 {
	if g > bound {
		return bound
	}
	if g < -bound {
		return -bound
	}
	return g
}

// ConvergenceBias is Eq. 15: |L − L_FLBooster| / L, the relative loss error
// the accelerated pipeline introduces versus the uncompressed baseline.
func ConvergenceBias(baseline, accelerated float64) float64 {
	if baseline == 0 {
		return 0
	}
	d := baseline - accelerated
	if d < 0 {
		d = -d
	}
	return d / baseline
}

// trainCtx bundles what hetero protocols need from the context, tolerating
// the nil (plaintext-oracle) mode.
type trainCtx struct {
	ctx *fl.Context
}

// gradBound returns the quantizer bound, or a default for oracle mode.
func (t trainCtx) gradBound() float64 {
	if t.ctx == nil {
		return 1
	}
	return t.ctx.Quant.Alpha()
}

// Accuracy computes classification accuracy of a linear scorer over data.
func Accuracy(w []float64, bias float64, ds *datasets.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	var correct int
	for _, ex := range ds.Examples {
		pred := 0.0
		if datasets.Sigmoid(ex.Features.Dot(w)+bias) >= 0.5 {
			pred = 1
		}
		if pred == ex.Label {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}
