package models

import (
	"testing"

	"flbooster/internal/datasets"
)

func TestHeteroLRPredictMatchesLoss(t *testing.T) {
	ds := testData(t, 80, 16)
	m, err := NewHeteroLR(nil, ds, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrainEpoch(); err != nil {
		t.Fatal(err)
	}
	// Predict must agree with the joint weight view that Loss uses.
	w := m.FullWeights()
	for i := 0; i < 10; i++ {
		ex := ds.Examples[i]
		want := datasets.Sigmoid(ex.Features.Dot(w) + m.Bias)
		if got := m.Predict(ex); got != want {
			t.Fatalf("example %d: Predict %v, joint view %v", i, got, want)
		}
	}
}

func TestSBTPredictMatchesTrainingTraversal(t *testing.T) {
	ds := testData(t, 120, 16)
	m, err := NewHeteroSBT(nil, ds, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		if _, err := m.TrainEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	// For training examples, Predict must reproduce the margin the trainer
	// accumulated sample-by-sample.
	for i := 0; i < ds.Len(); i += 7 {
		want := datasets.Sigmoid(m.margins[i])
		got := m.Predict(ds.Examples[i])
		if d := got - want; d > 1e-12 || d < -1e-12 {
			t.Fatalf("sample %d: Predict %v, training margin %v", i, got, want)
		}
	}
}

func TestNNPredictMatchesForward(t *testing.T) {
	ds := testData(t, 60, 12)
	m, err := NewHeteroNN(nil, ds, 4, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrainEpoch(); err != nil {
		t.Fatal(err)
	}
	_, preds := m.forwardPlain(0, ds.Len())
	for i := 0; i < ds.Len(); i += 5 {
		got := m.Predict(ds.Examples[i])
		if d := got - preds[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("sample %d: Predict %v, forward %v", i, got, preds[i])
		}
	}
}

func TestHeldOutEvaluation(t *testing.T) {
	full := testData(t, 200, 20)
	train, test, err := datasets.SplitTrainTest(full, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewHomoLR(nil, train, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 5; e++ {
		if _, err := m.TrainEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	acc := EvaluateAccuracy(m.Predict, test)
	if acc < 0.3 || acc > 1 {
		t.Fatalf("held-out accuracy degenerate: %v", acc)
	}
	if EvaluateAccuracy(m.Predict, &datasets.Dataset{}) != 0 {
		t.Fatal("empty dataset accuracy should be 0")
	}
}
