package models

import (
	"testing"

	"flbooster/internal/datasets"
	"flbooster/internal/fl"
	"flbooster/internal/gpu"
)

// testData builds a small sparse dataset with learnable structure.
func testData(t testing.TB, n, features int) *datasets.Dataset {
	t.Helper()
	spec := datasets.Spec{Name: "unit", Instances: n, Features: features, AvgActive: features / 3}
	ds, err := datasets.Generate(spec, 99)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// denseData builds a small dense dataset (the Synthetic shape).
func denseData(t testing.TB, n, features int) *datasets.Dataset {
	t.Helper()
	spec := datasets.Spec{Name: "dense-unit", Instances: n, Features: features, AvgActive: features, Dense: true}
	ds, err := datasets.Generate(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testCtx(t testing.TB, sys fl.System) *fl.Context {
	t.Helper()
	p := fl.NewProfile(sys, 128, 4)
	p.Device = gpu.SmallTestDevice()
	p.RBits = 14
	ctx, err := fl.NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func testOpts() Options {
	o := DefaultOptions()
	o.BatchSize = 32
	o.LearningRate = 0.1
	o.L2 = 0.001
	o.Parties = 4 // oracle runs mirror the encrypted topology
	return o
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{LearningRate: 0, BatchSize: 1},
		{LearningRate: 1, L2: -1, BatchSize: 1},
		{LearningRate: 1, BatchSize: 0},
	}
	for i, o := range bad {
		if err := o.validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if err := DefaultOptions().validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConvergenceBias(t *testing.T) {
	if got := ConvergenceBias(0.5, 0.51); got < 0.019 || got > 0.021 {
		t.Fatalf("ConvergenceBias = %v", got)
	}
	if ConvergenceBias(0.5, 0.49) != ConvergenceBias(0.5, 0.51) {
		t.Fatal("bias should be symmetric")
	}
	if ConvergenceBias(0, 1) != 0 {
		t.Fatal("zero baseline convention")
	}
}

// --- Homo LR ---------------------------------------------------------------

func TestHomoLROracleLearns(t *testing.T) {
	ds := testData(t, 120, 24)
	m, err := NewHomoLR(nil, ds, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	initial := m.Loss()
	var final float64
	for e := 0; e < 5; e++ {
		final, err = m.TrainEpoch()
		if err != nil {
			t.Fatal(err)
		}
	}
	if final >= initial {
		t.Fatalf("oracle loss did not improve: %v -> %v", initial, final)
	}
}

func TestHomoLREncryptedMatchesOracle(t *testing.T) {
	ds := testData(t, 120, 24)
	oracle, err := NewHomoLR(nil, ds, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Oracle must use the same party count for identical averaging.
	ctx := testCtx(t, fl.SystemFLBooster)
	enc, err := NewHomoLR(ctx, ds, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Close()
	var lossO, lossE float64
	for e := 0; e < 3; e++ {
		if lossO, err = oracle.TrainEpoch(); err != nil {
			t.Fatal(err)
		}
		if lossE, err = enc.TrainEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	// The paper's Table VII: convergence bias well under 5%.
	if bias := ConvergenceBias(lossO, lossE); bias > 0.05 {
		t.Fatalf("Homo LR convergence bias %v exceeds 5%% (oracle %v, enc %v)", bias, lossO, lossE)
	}
	c := ctx.Costs.Snapshot()
	if c.HEOps == 0 || c.CommBytes == 0 || c.OtherWall == 0 {
		t.Fatalf("cost anatomy incomplete: %+v", c)
	}
}

func TestHomoLRName(t *testing.T) {
	ds := testData(t, 20, 8)
	m, _ := NewHomoLR(nil, ds, testOpts())
	if m.Name() != "Homo LR" {
		t.Fatal("name drifted from the paper's tables")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHomoLRRejectsBadOptions(t *testing.T) {
	ds := testData(t, 20, 8)
	if _, err := NewHomoLR(nil, ds, Options{}); err == nil {
		t.Fatal("zero options should fail")
	}
}

// --- Hetero LR --------------------------------------------------------------

func TestHeteroLROracleLearns(t *testing.T) {
	ds := testData(t, 120, 24)
	m, err := NewHeteroLR(nil, ds, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	initial := m.Loss()
	var final float64
	for e := 0; e < 5; e++ {
		if final, err = m.TrainEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if final >= initial {
		t.Fatalf("oracle loss did not improve: %v -> %v", initial, final)
	}
}

func TestHeteroLREncryptedMatchesOracle(t *testing.T) {
	ds := testData(t, 96, 20)
	opts := testOpts()
	ctx := testCtx(t, fl.SystemFLBooster)

	oracle, err := NewHeteroLR(nil, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle with one "party" still trains the same joint model because the
	// vertical split is a pure reindexing; run it with the same batches.
	enc, err := NewHeteroLR(ctx, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Close()

	var lossO, lossE float64
	for e := 0; e < 2; e++ {
		if lossO, err = oracle.TrainEpoch(); err != nil {
			t.Fatal(err)
		}
		if lossE, err = enc.TrainEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if bias := ConvergenceBias(lossO, lossE); bias > 0.08 {
		t.Fatalf("Hetero LR bias %v too large (oracle %v, enc %v)", bias, lossO, lossE)
	}
	c := ctx.Costs.Snapshot()
	if c.HEOps == 0 || c.CommBytes == 0 {
		t.Fatalf("cost anatomy incomplete: %+v", c)
	}
}

func TestHeteroLRDenseFeatures(t *testing.T) {
	// Dense data exercises the negative-feature sign-split path.
	ds := denseData(t, 48, 8)
	ctx := testCtx(t, fl.SystemFLBooster)
	opts := testOpts()
	opts.BatchSize = 16
	enc, err := NewHeteroLR(ctx, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Close()
	oracle, err := NewHeteroLR(nil, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	lossE, err := enc.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	lossO, err := oracle.TrainEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if bias := ConvergenceBias(lossO, lossE); bias > 0.1 {
		t.Fatalf("dense Hetero LR bias %v (oracle %v, enc %v)", bias, lossO, lossE)
	}
}

// --- Hetero SBT --------------------------------------------------------------

func TestHeteroSBTOracleLearns(t *testing.T) {
	ds := testData(t, 150, 24)
	m, err := NewHeteroSBT(nil, ds, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	initial := m.Loss()
	var final float64
	for e := 0; e < 5; e++ {
		if final, err = m.TrainEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if final >= initial {
		t.Fatalf("boosting did not improve loss: %v -> %v", initial, final)
	}
	if len(m.Trees) != 5 {
		t.Fatalf("expected 5 trees, got %d", len(m.Trees))
	}
}

func TestHeteroSBTEncryptedMatchesOracle(t *testing.T) {
	for _, sys := range []fl.System{fl.SystemFLBooster, fl.SystemNoBC} {
		sys := sys
		t.Run(string(sys), func(t *testing.T) {
			ds := testData(t, 100, 16)
			ctx := testCtx(t, sys)
			enc, err := NewHeteroSBT(ctx, ds, testOpts())
			if err != nil {
				t.Fatal(err)
			}
			defer enc.Close()
			oracle, err := NewHeteroSBT(nil, ds, testOpts())
			if err != nil {
				t.Fatal(err)
			}
			var lossE, lossO float64
			for e := 0; e < 2; e++ {
				if lossE, err = enc.TrainEpoch(); err != nil {
					t.Fatal(err)
				}
				if lossO, err = oracle.TrainEpoch(); err != nil {
					t.Fatal(err)
				}
			}
			// Histogram quantization may shift split choices slightly; the
			// ensembles must stay close.
			if bias := ConvergenceBias(lossO, lossE); bias > 0.1 {
				t.Fatalf("SBT bias %v (oracle %v, enc %v)", bias, lossO, lossE)
			}
			c := ctx.Costs.Snapshot()
			if c.HEOps == 0 || c.CommBytes == 0 {
				t.Fatalf("cost anatomy incomplete: %+v", c)
			}
		})
	}
}

func TestSBTPackingHalvesCiphertexts(t *testing.T) {
	ds := testData(t, 80, 16)
	run := func(sys fl.System) int64 {
		ctx := testCtx(t, sys)
		m, err := NewHeteroSBT(ctx, ds, testOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		if _, err := m.TrainEpoch(); err != nil {
			t.Fatal(err)
		}
		return ctx.Costs.Snapshot().Ciphertexts
	}
	packed := run(fl.SystemFLBooster)
	unpacked := run(fl.SystemNoBC)
	if packed*2 > unpacked+2 {
		t.Fatalf("(g,h) packing should halve fresh ciphertexts: %d vs %d", packed, unpacked)
	}
}

func TestSBTQuantRoundTrip(t *testing.T) {
	ds := testData(t, 64, 8)
	m, err := NewHeteroSBT(testCtx(t, fl.SystemFLBooster), ds, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	vals := []float64{-1, -0.5, 0, 0.25, 1}
	for _, v := range vals {
		q := m.quantGH(v)
		back := m.dequantGHSum(q, 1)
		step := 2 / float64(m.ghMax())
		if d := back - v; d > step || d < -step {
			t.Fatalf("GH quant round trip of %v: %v", v, back)
		}
	}
	// Clamping.
	if m.quantGH(-5) != 0 || m.quantGH(5) != m.ghMax() {
		t.Fatal("GH quantization should clamp")
	}
}

// --- Hetero NN --------------------------------------------------------------

func TestHeteroNNOracleLearns(t *testing.T) {
	ds := testData(t, 120, 20)
	opts := testOpts()
	m, err := NewHeteroNN(nil, ds, 6, opts)
	if err != nil {
		t.Fatal(err)
	}
	initial := m.Loss()
	var final float64
	for e := 0; e < 6; e++ {
		if final, err = m.TrainEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if final >= initial {
		t.Fatalf("NN oracle loss did not improve: %v -> %v", initial, final)
	}
}

func TestHeteroNNEncryptedMatchesOracle(t *testing.T) {
	ds := testData(t, 64, 16)
	opts := testOpts()
	opts.BatchSize = 32
	ctx := testCtx(t, fl.SystemFLBooster)
	enc, err := NewHeteroNN(ctx, ds, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Close()
	oracle, err := NewHeteroNN(nil, ds, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	var lossE, lossO float64
	for e := 0; e < 2; e++ {
		if lossE, err = enc.TrainEpoch(); err != nil {
			t.Fatal(err)
		}
		if lossO, err = oracle.TrainEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if bias := ConvergenceBias(lossO, lossE); bias > 0.1 {
		t.Fatalf("NN bias %v (oracle %v, enc %v)", bias, lossO, lossE)
	}
	c := ctx.Costs.Snapshot()
	if c.HEOps == 0 || c.CommBytes == 0 {
		t.Fatalf("cost anatomy incomplete: %+v", c)
	}
}

func TestHeteroNNValidation(t *testing.T) {
	ds := testData(t, 20, 8)
	if _, err := NewHeteroNN(nil, ds, 0, testOpts()); err == nil {
		t.Fatal("zero hidden width should fail")
	}
	if _, err := NewHeteroNN(nil, ds, 4, Options{}); err == nil {
		t.Fatal("bad options should fail")
	}
}

func TestAccuracyHelper(t *testing.T) {
	ds := testData(t, 100, 16)
	w := make([]float64, ds.NumFeatures)
	acc := Accuracy(w, 0, ds)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy out of range: %v", acc)
	}
	// A trained model stays in range and does not collapse to the
	// anti-majority class (accuracy itself may wiggle on tiny noisy data).
	m, _ := NewHomoLR(nil, ds, testOpts())
	for e := 0; e < 5; e++ {
		if _, err := m.TrainEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	trained := Accuracy(m.Weights, m.Bias, ds)
	if trained < 0.35 || trained > 1 {
		t.Fatalf("trained accuracy degenerate: %v (baseline %v)", trained, acc)
	}
}
