package models

import (
	"fmt"

	"flbooster/internal/datasets"
	"flbooster/internal/fl"
)

// HomoLR is horizontally federated logistic regression: every party holds a
// shard of instances over the full feature space, computes local minibatch
// gradients, and the parties run the secure-aggregation round of Fig. 2 to
// average them under encryption.
type HomoLR struct {
	opts  Options
	fed   *fl.Federation // nil in plaintext-oracle mode
	parts []*datasets.Dataset
	full  *datasets.Dataset

	// Weights is the shared global model (read-only between epochs).
	Weights []float64
	// Bias is the shared intercept.
	Bias float64

	opt Optimizer
}

// NewHomoLR partitions ds horizontally across the context's parties and
// prepares a trainer. ctx may be nil for the plaintext oracle.
func NewHomoLR(ctx *fl.Context, ds *datasets.Dataset, opts Options) (*HomoLR, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	parties := oracleParties(opts)
	var fed *fl.Federation
	if ctx != nil {
		parties = ctx.Profile.Parties
		fed = fl.NewFederation(ctx)
	}
	parts, err := datasets.PartitionHorizontal(ds, parties)
	if err != nil {
		return nil, fmt.Errorf("models: HomoLR partition: %w", err)
	}
	return &HomoLR{
		opts:    opts,
		fed:     fed,
		parts:   parts,
		full:    ds,
		Weights: make([]float64, ds.NumFeatures),
		opt:     newOptimizer(opts),
	}, nil
}

// Name implements Model.
func (m *HomoLR) Name() string { return "Homo LR" }

// Loss implements Model.
func (m *HomoLR) Loss() float64 { return logisticLoss(m.Weights, m.Bias, m.full) }

// localGradient computes one party's minibatch gradient (mean logistic
// gradient + L2) over rows [lo, hi) of its shard. The bias gradient is
// appended as the final element so it rides the same encrypted vector.
func (m *HomoLR) localGradient(part *datasets.Dataset, lo, hi int) []float64 {
	g := make([]float64, len(m.Weights)+1)
	n := hi - lo
	if n == 0 {
		return g
	}
	for _, ex := range part.Examples[lo:hi] {
		err := datasets.Sigmoid(ex.Features.Dot(m.Weights)+m.Bias) - ex.Label
		ex.Features.AddScaledInto(g[:len(m.Weights)], err/float64(n))
		g[len(m.Weights)] += err / float64(n)
	}
	for j, w := range m.Weights {
		g[j] += m.opts.L2 * w
	}
	return g
}

// TrainEpoch implements Model: every party walks its shard in minibatches;
// each round aggregates the per-party gradients securely and applies the
// averaged update.
func (m *HomoLR) TrainEpoch() (float64, error) {
	// Use the smallest shard's batch count so every round has all parties.
	rounds := m.parts[0].Batches(m.opts.BatchSize)
	for _, p := range m.parts[1:] {
		if b := p.Batches(m.opts.BatchSize); len(b) < len(rounds) {
			rounds = b
		}
	}
	parties := len(m.parts)
	for _, r := range rounds {
		grads := make([][]float64, parties)
		if m.fed != nil {
			m.fed.Ctx.TrackOther(func() {
				m.computeLocalGrads(grads, r)
			})
			sum, err := m.fed.SecureAggregate(grads)
			if err != nil {
				return 0, err
			}
			m.fed.Ctx.TrackOther(func() {
				m.apply(sum, parties)
			})
		} else {
			m.computeLocalGrads(grads, r)
			sum := make([]float64, len(grads[0]))
			for _, g := range grads {
				for j, v := range g {
					sum[j] += v
				}
			}
			m.apply(sum, parties)
		}
	}
	return m.Loss(), nil
}

func (m *HomoLR) computeLocalGrads(grads [][]float64, r [2]int) {
	bound := trainCtx{ctxOf(m.fed)}.gradBound()
	for p, part := range m.parts {
		lo, hi := r[0], r[1]
		if hi > part.Len() {
			hi = part.Len()
		}
		if lo > hi {
			lo = hi
		}
		g := m.localGradient(part, lo, hi)
		for j := range g {
			g[j] = clampGrad(g[j], bound)
		}
		grads[p] = g
	}
}

// apply performs the averaged optimizer step from the aggregated gradient
// sum. Parameters are laid out [weights..., bias] so the optimizer's moment
// state stays index-stable across rounds.
func (m *HomoLR) apply(sum []float64, parties int) {
	dim := len(m.Weights)
	g := make([]float64, dim+1)
	for j := range g {
		g[j] = sum[j] / float64(parties)
	}
	params := make([]float64, dim+1)
	copy(params, m.Weights)
	params[dim] = m.Bias
	m.opt.Step(params, g)
	copy(m.Weights, params[:dim])
	m.Bias = params[dim]
}

// Close releases the federation transport.
func (m *HomoLR) Close() error {
	if m.fed == nil {
		return nil
	}
	return m.fed.Close()
}

// ctxOf tolerates the nil-federation oracle mode.
func ctxOf(fed *fl.Federation) *fl.Context {
	if fed == nil {
		return nil
	}
	return fed.Ctx
}
