package rsa

import (
	"testing"

	"flbooster/internal/mpint"
)

func testKey(t testing.TB) *PrivateKey {
	t.Helper()
	sk, err := GenerateKey(mpint.NewRNG(2000), 256)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

func TestKeyGeneration(t *testing.T) {
	sk := testKey(t)
	if sk.KeyBits() != 256 {
		t.Fatalf("key size = %d", sk.KeyBits())
	}
	if mpint.Cmp(mpint.Mul(sk.P, sk.Q), sk.N) != 0 {
		t.Fatal("n != p*q")
	}
	// e*d ≡ 1 mod φ(n)
	phi := mpint.Mul(mpint.SubWord(sk.P, 1), mpint.SubWord(sk.Q, 1))
	if !mpint.Mod(mpint.Mul(sk.E, sk.D), phi).IsOne() {
		t.Fatal("e*d != 1 mod phi")
	}
}

func TestGenerateKeyRejectsTinySize(t *testing.T) {
	if _, err := GenerateKey(mpint.NewRNG(1), 8); err == nil {
		t.Fatal("tiny key should be rejected")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	sk := testKey(t)
	rng := mpint.NewRNG(1)
	for i := 0; i < 30; i++ {
		m := rng.RandBelow(sk.N)
		c, err := sk.Encrypt(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if mpint.Cmp(got, m) != 0 {
			t.Fatalf("round trip failed for %s", m)
		}
	}
}

func TestEncryptRejectsOversized(t *testing.T) {
	sk := testKey(t)
	if _, err := sk.Encrypt(sk.N); err == nil {
		t.Fatal("m >= n should fail")
	}
}

func TestDecryptRejectsOversized(t *testing.T) {
	sk := testKey(t)
	if _, err := sk.Decrypt(Ciphertext{C: sk.N}); err == nil {
		t.Fatal("c >= n should fail")
	}
}

func TestMultiplicativeHomomorphism(t *testing.T) {
	sk := testKey(t)
	rng := mpint.NewRNG(2)
	for i := 0; i < 20; i++ {
		m1 := rng.RandBelow(sk.N)
		m2 := rng.RandBelow(sk.N)
		c1, _ := sk.Encrypt(m1)
		c2, _ := sk.Encrypt(m2)
		got, err := sk.Decrypt(sk.Mul(c1, c2))
		if err != nil {
			t.Fatal(err)
		}
		want := mpint.ModMul(m1, m2, sk.N)
		if mpint.Cmp(got, want) != 0 {
			t.Fatalf("E(m1)*E(m2) = E(%s), want E(%s)", got, want)
		}
	}
}

func TestSignVerify(t *testing.T) {
	sk := testKey(t)
	rng := mpint.NewRNG(3)
	m := rng.RandBelow(sk.N)
	s, err := sk.Sign(m)
	if err != nil {
		t.Fatal(err)
	}
	if !sk.Verify(m, s) {
		t.Fatal("valid signature rejected")
	}
	if sk.Verify(mpint.AddWord(m, 1), s) {
		t.Fatal("forged message accepted")
	}
	if _, err := sk.Sign(sk.N); err == nil {
		t.Fatal("oversized message should fail to sign")
	}
}

func TestNewKeyFromPrimesValidation(t *testing.T) {
	r := mpint.NewRNG(4)
	p := r.RandPrime(64)
	if _, err := NewKeyFromPrimes(p, p); err == nil {
		t.Fatal("p == q should be rejected")
	}
}

func TestDeterministicEncryption(t *testing.T) {
	// Textbook RSA is deterministic — a property the PSI handshake relies
	// on; pin it down so nobody "fixes" it with padding.
	sk := testKey(t)
	m := mpint.FromUint64(424242)
	c1, _ := sk.Encrypt(m)
	c2, _ := sk.Encrypt(m)
	if mpint.Cmp(c1.C, c2.C) != 0 {
		t.Fatal("textbook RSA must be deterministic")
	}
}

func BenchmarkDecryptCRT256(b *testing.B) {
	sk := testKey(b)
	c, _ := sk.Encrypt(mpint.NewRNG(5).RandBelow(sk.N))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Decrypt(c); err != nil {
			b.Fatal(err)
		}
	}
}
