// Package rsa implements textbook RSA with its multiplicative homomorphism
// — the second cryptosystem FLBooster's API layer exposes (Table I:
// RSA::key_gen / encrypt / decrypt / mul). Decryption uses the standard CRT
// split. This is deliberately *textbook* (no OAEP padding): the homomorphic
// property E(m₁)·E(m₂) = E(m₁·m₂) that federated protocols exploit only
// holds without padding, exactly as in the paper's API.
package rsa

import (
	"fmt"

	"flbooster/internal/mpint"
)

// PublicKey is (n, e).
type PublicKey struct {
	N mpint.Nat
	E mpint.Nat

	mont *mpint.Mont
}

// PrivateKey is the full trapdoor with CRT precomputation.
type PrivateKey struct {
	PublicKey
	D mpint.Nat // decryption exponent
	P mpint.Nat
	Q mpint.Nat

	dp, dq mpint.Nat // d mod p−1, d mod q−1
	qInv   mpint.Nat // q⁻¹ mod p
	montP  *mpint.Mont
	montQ  *mpint.Mont
}

// Ciphertext is an RSA ciphertext in Z*_n.
type Ciphertext struct {
	C mpint.Nat
}

// defaultE is the conventional public exponent 65537.
var defaultE = mpint.FromUint64(65537)

// KeyBits returns the modulus size in bits.
func (pk *PublicKey) KeyBits() int { return pk.N.BitLen() }

// Mont exposes the modulus context for vectorized backends.
func (pk *PublicKey) Mont() *mpint.Mont { return pk.mont }

// GenerateKey creates an RSA key pair with an n of exactly `bits` bits and
// e = 65537.
func GenerateKey(rng *mpint.RNG, bits int) (*PrivateKey, error) {
	if bits < 16 {
		return nil, fmt.Errorf("rsa: key size %d too small", bits)
	}
	for {
		p, q := rng.RandSafePrimePair(bits / 2)
		sk, err := NewKeyFromPrimes(p, q)
		if err != nil {
			continue // e not invertible mod φ(n); redraw
		}
		if sk.N.BitLen() != bits {
			continue
		}
		return sk, nil
	}
}

// NewKeyFromPrimes assembles a key from externally generated primes (e.g.
// the GPU prime generator).
func NewKeyFromPrimes(p, q mpint.Nat) (*PrivateKey, error) {
	if mpint.Cmp(p, q) == 0 {
		return nil, fmt.Errorf("rsa: p and q must differ")
	}
	n := mpint.Mul(p, q)
	pm1 := mpint.SubWord(p, 1)
	qm1 := mpint.SubWord(q, 1)
	phi := mpint.Mul(pm1, qm1)
	d, ok := mpint.ModInverse(defaultE, phi)
	if !ok {
		return nil, fmt.Errorf("rsa: e=65537 not invertible mod φ(n)")
	}
	qInv, ok := mpint.ModInverse(q, p)
	if !ok {
		return nil, fmt.Errorf("rsa: q not invertible mod p")
	}
	sk := &PrivateKey{
		PublicKey: PublicKey{N: n, E: defaultE.Clone(), mont: mpint.NewMont(n)},
		D:         d, P: p, Q: q,
		dp:    mpint.Mod(d, pm1),
		dq:    mpint.Mod(d, qm1),
		qInv:  qInv,
		montP: mpint.NewMont(p),
		montQ: mpint.NewMont(q),
	}
	return sk, nil
}

// Encrypt computes c = mᵉ mod n. The plaintext must be < n.
func (pk *PublicKey) Encrypt(m mpint.Nat) (Ciphertext, error) {
	if mpint.Cmp(m, pk.N) >= 0 {
		return Ciphertext{}, fmt.Errorf("rsa: plaintext (%d bits) must be < n (%d bits)",
			m.BitLen(), pk.N.BitLen())
	}
	return Ciphertext{C: pk.mont.Exp(m, pk.E)}, nil
}

// Decrypt computes m = c^d mod n via the CRT: m_p = c^dp mod p,
// m_q = c^dq mod q, recombined with Garner's formula.
func (sk *PrivateKey) Decrypt(c Ciphertext) (mpint.Nat, error) {
	if mpint.Cmp(c.C, sk.N) >= 0 {
		return nil, fmt.Errorf("rsa: ciphertext out of range")
	}
	mp := sk.montP.Exp(c.C, sk.dp)
	mq := sk.montQ.Exp(c.C, sk.dq)
	// m = mq + q·((mp − mq)·qInv mod p)
	diff := mpint.ModSub(mp, mpint.Mod(mq, sk.P), sk.P)
	h := mpint.ModMul(diff, sk.qInv, sk.P)
	return mpint.Add(mq, mpint.Mul(sk.Q, h)), nil
}

// Mul computes the multiplicative homomorphism:
// E(m₁)·E(m₂) mod n = E(m₁·m₂ mod n).
func (pk *PublicKey) Mul(a, b Ciphertext) Ciphertext {
	return Ciphertext{C: mpint.ModMul(a.C, b.C, pk.N)}
}

// Sign produces the textbook signature s = mᵈ mod n (used by the blind
// set-intersection handshake in vertical FL alignment).
func (sk *PrivateKey) Sign(m mpint.Nat) (mpint.Nat, error) {
	if mpint.Cmp(m, sk.N) >= 0 {
		return nil, fmt.Errorf("rsa: message out of range")
	}
	c, err := sk.Decrypt(Ciphertext{C: m})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Verify checks a textbook signature: sᵉ mod n == m.
func (pk *PublicKey) Verify(m, s mpint.Nat) bool {
	return mpint.Cmp(pk.mont.Exp(s, pk.E), mpint.Mod(m, pk.N)) == 0
}
