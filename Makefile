# Developer entry points. `make check` is the pre-commit gate: it builds
# everything, vets, runs the full test suite, and re-runs the concurrency-
# sensitive packages (transport + round runtime) under the race detector.

GO ?= go

.PHONY: build test vet race check resilience

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The chaos/quorum suites exercise goroutines, deadlines, and shared queues;
# they must stay clean under -race and finish with time to spare.
race:
	$(GO) test -race -timeout 120s ./internal/flnet/... ./internal/fl/...

check: build vet test race

# Demonstrate graceful degradation under a straggler (see DESIGN.md §6).
resilience:
	$(GO) run ./cmd/flbench -keys 1024 -epochs 4 resilience
