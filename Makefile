# Developer entry points. `make check` is the pre-commit gate: it builds
# everything, vets, runs the full test suite, re-runs the concurrency-
# sensitive packages (transport + round runtime + device fault layer) under
# the race detector, smoke-runs the fuzz targets, and compiles-and-runs
# every HE-stack benchmark once so benchmark code cannot bit-rot.

GO ?= go

.PHONY: build test vet race fuzz bench-smoke check resilience devfault

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The chaos/quorum suites and the device fault/watchdog/failover paths
# exercise goroutines, deadlines, and shared counters; they must stay clean
# under -race and finish with time to spare.
race:
	$(GO) test -race -timeout 300s ./internal/flnet/... ./internal/fl/... ./internal/gpu/... ./internal/ghe/...

# Short fuzz pass over device-config validation and the launch path; the
# corpus grows under internal/gpu/testdata/fuzz.
fuzz:
	$(GO) test ./internal/gpu -run '^$$' -fuzz FuzzConfigValidate -fuzztime 10s

# One iteration of every benchmark in the HE hot-path packages: catches
# benchmarks that no longer compile or crash without paying for real timing
# runs.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/mpint ./internal/ghe ./internal/paillier

check: build vet test race fuzz bench-smoke

# Demonstrate graceful degradation under a straggler (see DESIGN.md §6).
resilience:
	$(GO) run ./cmd/flbench -keys 1024 -epochs 4 resilience

# Demonstrate resilient GPU-HE execution: transient faults retried and
# verified, a mid-round device kill failing over bit-exact (DESIGN.md §7).
devfault:
	$(GO) run ./cmd/flbench -keys 1024 -epochs 4 devfault
