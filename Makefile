# Developer entry points. `make check` is the pre-commit gate: it builds
# everything, vets, runs the full test suite, re-runs the concurrency-
# sensitive packages (transport + round runtime + device fault layer) under
# the race detector, smoke-runs the fuzz targets, compiles-and-runs every
# HE-stack benchmark once so benchmark code cannot bit-rot, runs the
# CI-sized multi-fault chaos soak under the race detector, runs the small-N
# cross-device scale sweep (flat vs tree bit-exactness and the coordinator
# memory bound) under the race detector, runs the CI-sized round-anatomy
# sweep (optimized round path bit-exact with the seed path and never slower)
# under the race detector, and runs the CI-sized multi-device sharding sweep
# (near-linear scaling, bit-exact results, work stealing under a mid-batch
# device kill) under the race detector.

GO ?= go
STATICCHECK ?= staticcheck

.PHONY: build test vet lint race fuzz bench-smoke soak-smoke scale-smoke round-smoke devset-smoke check resilience devfault soak scale round devset

build:
	$(GO) build ./...

# -shuffle=on randomizes test order within each package so tests that only
# pass because of accidental ordering are flushed out instead of fossilized.
test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. CI installs and runs staticcheck
# unconditionally (see .github/workflows/ci.yml); locally the target tells
# you how to get it rather than silently passing.
lint: vet
	@command -v $(STATICCHECK) >/dev/null 2>&1 || { \
		echo "staticcheck not found; install with:"; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@latest"; \
		exit 1; }
	$(STATICCHECK) ./...

# The chaos/quorum suites and the device fault/watchdog/failover paths
# exercise goroutines, deadlines, and shared counters; they must stay clean
# under -race and finish with time to spare.
race:
	$(GO) test -race -timeout 300s ./internal/flnet/... ./internal/fl/... ./internal/gpu/... ./internal/ghe/...

# Short fuzz passes: device-config validation (corpus under
# internal/gpu/testdata/fuzz), the shard splitter's partition invariants
# (contiguous, complete, non-overlapping for any item count and device
# exclusion set), and the chunk reassembler's untrusted-input invariants
# (out-of-range indices, flip-flopping totals, oversized declarations must
# all reject typed, never panic).
fuzz:
	$(GO) test ./internal/gpu -run '^$$' -fuzz FuzzConfigValidate -fuzztime 10s
	$(GO) test ./internal/gpu -run '^$$' -fuzz FuzzSplitShards -fuzztime 10s
	$(GO) test ./internal/flnet -run '^$$' -fuzz FuzzReassembler -fuzztime 10s

# One iteration of every benchmark in the HE hot-path packages: catches
# benchmarks that no longer compile or crash without paying for real timing
# runs.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/mpint ./internal/ghe ./internal/paillier

# The CI-sized chaos soak (DESIGN.md §11): seeded network chaos + device
# faults + coordinator kills with journal recovery + client churn, every
# completed round checked against the plaintext oracle, all under -race.
soak-smoke:
	$(GO) test -race -run TestSoakSmoke -timeout 300s -count 1 ./internal/fl

# The cross-device scale sweep at CI-affordable client counts (DESIGN.md
# §13): tree rounds must decrypt bit-identically to flat and the
# coordinator's live-ciphertext peak must stay bounded by fanout·depth.
scale-smoke:
	$(GO) test -race -run TestScaleSmoke -timeout 300s -count 1 ./internal/bench

# The round-anatomy sweep at CI-affordable key sizes (DESIGN.md §14): the
# optimized round path (nonce-pool rearm + wave overlap) must stay bit-exact
# with the seed path across plain/chunked/defended/tree/classic rounds and
# crash recovery, and must never be slower.
round-smoke:
	$(GO) test -race -run TestRoundSmoke -timeout 300s -count 1 ./internal/bench

# The multi-device sharding sweep at CI size (DESIGN.md §15): D ∈ {1, 2}
# with bit-exact rows, a real speedup at D=2, and a mid-batch device kill
# that steals the dead device's shards without diverging.
devset-smoke:
	$(GO) test -race -run TestDevsetSmoke -timeout 300s -count 1 ./internal/bench

check: build vet test race fuzz bench-smoke soak-smoke scale-smoke round-smoke devset-smoke

# Demonstrate graceful degradation under a straggler (see DESIGN.md §6).
resilience:
	$(GO) run ./cmd/flbench -keys 1024 -epochs 4 resilience

# Demonstrate resilient GPU-HE execution: transient faults retried and
# verified, a mid-round device kill failing over bit-exact (DESIGN.md §7).
devfault:
	$(GO) run ./cmd/flbench -keys 1024 -epochs 4 devfault

# The full 60-round multi-fault chaos soak; regenerates BENCH_soak.json
# (run from the repo root so the summary lands next to its siblings).
soak:
	$(GO) run ./cmd/flbench soak

# The full 10²→10⁵ cross-device client sweep; regenerates BENCH_scale.json.
scale:
	$(GO) run ./cmd/flbench scale

# The round-anatomy sweep at production keys; regenerates BENCH_round.json
# and enforces the ≥1.15x end-to-end plain-round speedup floor.
round:
	$(GO) run ./cmd/flbench -keys 2048 round

# The multi-device sharding sweep at production keys; regenerates
# BENCH_devset.json and enforces the ≥0.75·D near-linear scaling gate plus
# the 1-of-D death leg's bit-exactness and throughput bound.
devset:
	$(GO) run ./cmd/flbench -keys 2048 devset
