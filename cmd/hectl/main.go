// Command hectl exercises FLBooster's Table-I HE APIs from the shell:
// key generation, encryption, decryption, and homomorphic addition on the
// simulated GPU.
//
// Usage:
//
//	hectl keygen  -bits 512 -seed 7
//	hectl encrypt -bits 256 -seed 7 12 34 56
//	hectl add     -bits 256 -seed 7 12 34
//	hectl bench   -bits 512 -n 1024
//
// keygen prints the key components; encrypt round-trips the arguments
// through encrypt→decrypt; add homomorphically sums the arguments two at a
// time; bench measures device encryption throughput.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flbooster/internal/core"
	"flbooster/internal/mpint"
	"flbooster/internal/paillier"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hectl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: hectl <keygen|encrypt|add|bench> [flags] [values...]")
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	bits := fs.Int("bits", 512, "Paillier key size in bits")
	seed := fs.Uint64("seed", uint64(time.Now().UnixNano()), "PRNG seed (defaults to time)")
	n := fs.Int("n", 1024, "batch size for bench")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	plat := core.Default(*seed)

	switch cmd {
	case "keygen":
		sk, err := plat.PaillierKeyGen(*bits)
		if err != nil {
			return err
		}
		fmt.Printf("key size : %d bits\n", sk.KeyBits())
		fmt.Printf("n        : %s\n", sk.N)
		fmt.Printf("g        : %s\n", sk.G)
		fmt.Printf("p        : %s\n", sk.P)
		fmt.Printf("q        : %s\n", sk.Q)
		fmt.Printf("lambda   : %s\n", sk.Lambda)
		return nil

	case "encrypt":
		sk, vals, err := keyAndValues(plat, *bits, fs.Args())
		if err != nil {
			return err
		}
		cts, err := plat.PaillierEncrypt(&sk.PublicKey, vals)
		if err != nil {
			return err
		}
		dec, err := plat.PaillierDecrypt(sk, cts)
		if err != nil {
			return err
		}
		for i, v := range vals {
			fmt.Printf("m=%s  ->  E(m)=%s...  ->  D(E(m))=%s\n", v, prefix(cts[i].C.String(), 32), dec[i])
		}
		return nil

	case "add":
		sk, vals, err := keyAndValues(plat, *bits, fs.Args())
		if err != nil {
			return err
		}
		if len(vals)%2 != 0 {
			return fmt.Errorf("add needs an even number of values")
		}
		a := make([]mpint.Nat, len(vals)/2)
		b := make([]mpint.Nat, len(vals)/2)
		for i := range a {
			a[i], b[i] = vals[2*i], vals[2*i+1]
		}
		ca, err := plat.PaillierEncrypt(&sk.PublicKey, a)
		if err != nil {
			return err
		}
		cb, err := plat.PaillierEncrypt(&sk.PublicKey, b)
		if err != nil {
			return err
		}
		sums, err := plat.PaillierAdd(&sk.PublicKey, ca, cb)
		if err != nil {
			return err
		}
		dec, err := plat.PaillierDecrypt(sk, sums)
		if err != nil {
			return err
		}
		for i := range a {
			fmt.Printf("D(E(%s) * E(%s)) = %s\n", a[i], b[i], dec[i])
		}
		return nil

	case "bench":
		sk, err := plat.PaillierKeyGen(*bits)
		if err != nil {
			return err
		}
		rng := mpint.NewRNG(*seed)
		vals := make([]mpint.Nat, *n)
		for i := range vals {
			vals[i] = rng.RandBelow(sk.N)
		}
		start := time.Now()
		cts, err := plat.PaillierEncrypt(&sk.PublicKey, vals)
		if err != nil {
			return err
		}
		encDur := time.Since(start)
		start = time.Now()
		if _, err := plat.PaillierDecrypt(sk, cts); err != nil {
			return err
		}
		decDur := time.Since(start)
		st := plat.Device().Stats()
		fmt.Printf("batch             : %d values at %d-bit keys\n", *n, *bits)
		fmt.Printf("encrypt wall      : %v (%.0f/s)\n", encDur, float64(*n)/encDur.Seconds())
		fmt.Printf("decrypt wall      : %v (%.0f/s)\n", decDur, float64(*n)/decDur.Seconds())
		fmt.Printf("device sim time   : %v\n", st.SimTime())
		fmt.Printf("SM utilization    : %.1f%%\n", st.AvgUtilization()*100)
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// keyAndValues generates a key and parses decimal plaintexts, validating
// range.
func keyAndValues(plat *core.Platform, bits int, raw []string) (*paillier.PrivateKey, []mpint.Nat, error) {
	if len(raw) == 0 {
		return nil, nil, fmt.Errorf("no values given")
	}
	sk, err := plat.PaillierKeyGen(bits)
	if err != nil {
		return nil, nil, err
	}
	vals := make([]mpint.Nat, len(raw))
	for i, s := range raw {
		v, err := mpint.ParseDecimal(s)
		if err != nil {
			return nil, nil, fmt.Errorf("value %q: %w", s, err)
		}
		if mpint.Cmp(v, sk.N) >= 0 {
			return nil, nil, fmt.Errorf("value %s exceeds the modulus", s)
		}
		vals[i] = v
	}
	return sk, vals, nil
}

func prefix(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
