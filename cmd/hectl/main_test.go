package main

import "testing"

func TestRunKeygen(t *testing.T) {
	if err := run([]string{"keygen", "-bits", "128", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEncryptRoundTrip(t *testing.T) {
	if err := run([]string{"encrypt", "-bits", "128", "-seed", "7", "12", "3456789"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAdd(t *testing.T) {
	if err := run([]string{"add", "-bits", "128", "-seed", "7", "10", "32"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"add", "-bits", "128", "-seed", "7", "10"}); err == nil {
		t.Fatal("odd value count should fail")
	}
}

func TestRunBench(t *testing.T) {
	if err := run([]string{"bench", "-bits", "128", "-seed", "7", "-n", "8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no command should fail")
	}
	if err := run([]string{"nope"}); err == nil {
		t.Fatal("unknown command should fail")
	}
	if err := run([]string{"encrypt", "-bits", "128", "-seed", "7"}); err == nil {
		t.Fatal("encrypt with no values should fail")
	}
	if err := run([]string{"encrypt", "-bits", "128", "-seed", "7", "xyz"}); err == nil {
		t.Fatal("non-numeric value should fail")
	}
}

func TestPrefix(t *testing.T) {
	if prefix("abcdef", 3) != "abc" || prefix("ab", 3) != "ab" {
		t.Fatal("prefix helper broken")
	}
}
