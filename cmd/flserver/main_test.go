package main

import (
	"testing"
	"time"

	"flbooster/internal/obs"
)

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("0.1, -2.5,3")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, -2.5, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseFloats = %v", got)
		}
	}
	if _, err := parseFloats(""); err == nil {
		t.Fatal("empty should fail")
	}
	if _, err := parseFloats("a,b"); err == nil {
		t.Fatal("non-numeric should fail")
	}
}

func TestDemoEndToEnd(t *testing.T) {
	// Full hub + server + clients over loopback TCP with a small key, with
	// clients encrypting through the streamed pipeline (chunk 2), sharing
	// one observability bundle across the in-process parties.
	o := obs.New(9)
	if err := runDemo(3, 4, 128, 2, 9, 0, 0, 0, o); err != nil {
		t.Fatal(err)
	}
	if o.Recorder().Len() == 0 {
		t.Fatal("demo with tracing recorded no spans")
	}
	if o.Metrics().Counter("net.hub.msgs") == 0 {
		t.Fatal("demo published no hub traffic metrics")
	}
}

func TestDemoQuorumSurvivesStraggler(t *testing.T) {
	// Client 0 delays its upload past the gather deadline: with quorum 3 of
	// 4 the round must complete (and the straggler still terminate) instead
	// of stalling on the missing upload.
	done := make(chan error, 1)
	go func() {
		done <- runDemo(4, 4, 128, 0, 9, 3, 250*time.Millisecond, 900*time.Millisecond, nil)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("degraded demo hung")
	}
}

func TestDemoQuorumBelowThresholdFails(t *testing.T) {
	// Every client misses an immediate deadline: the server must fail with
	// a quorum error rather than aggregate nothing or hang. The straggler
	// demo path only delays client 0, so demand a full quorum of 2.
	done := make(chan error, 1)
	go func() {
		done <- runDemo(2, 2, 128, 0, 9, 2, time.Nanosecond, 500*time.Millisecond, nil)
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("below-quorum demo should fail")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("below-quorum demo hung")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no command should fail")
	}
	if err := run([]string{"nope"}); err == nil {
		t.Fatal("unknown command should fail")
	}
	if err := run([]string{"client", "-values", ""}); err == nil {
		t.Fatal("client without values should fail")
	}
}
