package main

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"flbooster/internal/fl"
	"flbooster/internal/flnet"
	"flbooster/internal/obs"
)

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("0.1, -2.5,3")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, -2.5, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseFloats = %v", got)
		}
	}
	if _, err := parseFloats(""); err == nil {
		t.Fatal("empty should fail")
	}
	if _, err := parseFloats("a,b"); err == nil {
		t.Fatal("non-numeric should fail")
	}
}

func TestDemoEndToEnd(t *testing.T) {
	// Full hub + server + clients over loopback TCP with a small key, with
	// clients encrypting through the streamed pipeline (chunk 2), sharing
	// one observability bundle across the in-process parties.
	o := obs.New(9)
	if err := runDemo(demoOpts{clients: 3, dim: 4, keyBits: 128, chunk: 2, seed: 9, o: o}); err != nil {
		t.Fatal(err)
	}
	if o.Recorder().Len() == 0 {
		t.Fatal("demo with tracing recorded no spans")
	}
	if o.Metrics().Counter("net.hub.msgs") == 0 {
		t.Fatal("demo published no hub traffic metrics")
	}
}

func TestDemoMultiDeviceRound(t *testing.T) {
	// Every party shards its vector HE ops across a 2-device set; the round
	// must complete over real loopback TCP exactly like the single-device
	// demo (bit-exactness of the sharded engine is pinned in fl's tests).
	if err := runDemo(demoOpts{clients: 3, dim: 4, keyBits: 128, devices: 2, seed: 9}); err != nil {
		t.Fatal(err)
	}
}

func TestDemoQuorumSurvivesStraggler(t *testing.T) {
	// Client 0 delays its upload past the gather deadline: with quorum 3 of
	// 4 the round must complete (and the straggler still terminate) instead
	// of stalling on the missing upload.
	done := make(chan error, 1)
	go func() {
		done <- runDemo(demoOpts{
			clients: 4, dim: 4, keyBits: 128, seed: 9,
			quorum: 3, timeout: 250 * time.Millisecond, straggle: 900 * time.Millisecond,
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("degraded demo hung")
	}
}

func TestDemoQuorumBelowThresholdFails(t *testing.T) {
	// Every client misses an immediate deadline: the server must fail with
	// a quorum error rather than aggregate nothing or hang. The straggler
	// demo path only delays client 0, so demand a full quorum of 2.
	done := make(chan error, 1)
	go func() {
		done <- runDemo(demoOpts{
			clients: 2, dim: 2, keyBits: 128, seed: 9,
			quorum: 2, timeout: time.Nanosecond, straggle: 500 * time.Millisecond,
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("below-quorum demo should fail")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("below-quorum demo hung")
	}
}

func TestDemoDefendedRound(t *testing.T) {
	// The robustness flags end to end over loopback TCP: a seeded scale
	// adversary poisons one upload, the server aggregates group-wise, and
	// every client decrypts and robust-combines the grouped aggregate.
	done := make(chan error, 1)
	go func() {
		done <- runDemo(demoOpts{
			clients: 4, dim: 4, keyBits: 128, seed: 9,
			byz:     fl.AttackScale,
			defense: fl.DefensePolicy{Groups: 2, Combiner: fl.CombineMedian},
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("defended demo hung")
	}
}

func TestServerGroupedCrashResumeBroadcast(t *testing.T) {
	// Crash a group-wise server at the aggregate boundary and resume it: the
	// journaled grouped payload must replay under the "gagg" kind so the
	// defended clients still decode and combine it.
	hub, err := flnet.NewTCPHub("127.0.0.1:0", flnet.GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	journal := filepath.Join(t.TempDir(), "round.journal")
	policy := fl.DefensePolicy{Groups: 2}

	vals := [][]float64{{0.1, 0.2}, {-0.05, 0.25}, {0.3, -0.1}}
	clientErr := make(chan error, len(vals))
	for i := range vals {
		go func(id int) {
			clientErr <- runClient(clientOpts{
				addr: hub.Addr(), id: id, clients: len(vals), keyBits: 128, seed: 9,
				vals: vals[id], defense: policy,
			})
		}(i)
	}

	err = runServer(serverOpts{
		addr: hub.Addr(), clients: len(vals), keyBits: 128, seed: 9,
		groups: policy.Groups, journal: journal, failpoint: "aggregate",
	})
	if err == nil || !strings.Contains(err.Error(), "failpoint") {
		t.Fatalf("failpoint run returned %v", err)
	}
	if err := runServer(serverOpts{
		addr: hub.Addr(), clients: len(vals), keyBits: 128, seed: 9,
		groups: policy.Groups, journal: journal, resume: true,
	}); err != nil {
		t.Fatalf("resume run failed: %v", err)
	}
	for range vals {
		select {
		case err := <-clientErr:
			if err != nil {
				t.Fatalf("defended client failed after resume: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("defended clients never received the resumed broadcast")
		}
	}
	state := replayJournal(t, journal)
	if state.Completed != 1 || state.Resume != nil {
		t.Fatalf("grouped resume journal replayed wrong: %+v", state)
	}
}

// replayJournal loads and replays a server journal file for assertions.
func replayJournal(t *testing.T, path string) fl.RecoveryState {
	t.Helper()
	store, err := fl.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	recs, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	state, err := fl.Replay(recs)
	if err != nil {
		t.Fatal(err)
	}
	return state
}

func TestServerGracefulDrainAborts(t *testing.T) {
	// A drain signal with zero uploads (below quorum) must exit cleanly —
	// nil error, so main exits zero — leaving the abandoned round journaled
	// as drained with no open resume point.
	hub, err := flnet.NewTCPHub("127.0.0.1:0", flnet.GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	journal := filepath.Join(t.TempDir(), "round.journal")

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- runServer(serverOpts{
			addr: hub.Addr(), clients: 2, keyBits: 128, seed: 9,
			journal: journal, stop: stop,
		})
	}()
	close(stop) // closed channels are always ready: no upload can win the race
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain below quorum must exit clean, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain hung")
	}
	state := replayJournal(t, journal)
	if state.Drained != 1 || state.Resume != nil || state.Completed != 0 {
		t.Fatalf("drained journal replayed wrong: %+v", state)
	}
}

func TestServerDrainFinishesWithQuorum(t *testing.T) {
	// A drain signal after quorum is met must finish the round — aggregate,
	// broadcast, journal round-done — not abandon the connected client.
	hub, err := flnet.NewTCPHub("127.0.0.1:0", flnet.GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	journal := filepath.Join(t.TempDir(), "round.journal")

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- runServer(serverOpts{
			addr: hub.Addr(), clients: 2, keyBits: 128, seed: 9,
			quorum: 1, journal: journal, stop: stop,
		})
	}()
	clientErr := make(chan error, 1)
	go func() {
		clientErr <- runClient(clientOpts{
			addr: hub.Addr(), id: 0, clients: 2, keyBits: 128, seed: 9,
			vals: []float64{0.5, -0.25},
		})
	}()

	// Drain only after the upload has been routed through the hub (plus a
	// beat for the server loop to consume it), so quorum 1 is already met.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, msgsRouted, _ := hub.Meter().Snapshot()
		if msgsRouted >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("upload never reached the hub")
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(250 * time.Millisecond)
	close(stop)

	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("drain with quorum met must finish the round: %v", err)
			}
		case err := <-clientErr:
			if err != nil {
				t.Fatalf("client failed: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("drain-with-quorum run hung")
		}
	}
	state := replayJournal(t, journal)
	if state.Completed != 1 || state.Drained != 0 || state.Resume != nil {
		t.Fatalf("drain-with-quorum journal replayed wrong: %+v", state)
	}
}

func TestServerCrashResumeBroadcast(t *testing.T) {
	// Kill the server at the aggregate boundary (nonzero exit), restart it
	// with -resume: it must broadcast the journaled payload to the still-
	// waiting clients without re-gathering, and a further -resume restart
	// must be a no-op because the journal shows the round complete.
	hub, err := flnet.NewTCPHub("127.0.0.1:0", flnet.GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	journal := filepath.Join(t.TempDir(), "round.journal")

	vals := [][]float64{{0.1, 0.2, 0.3, 0.4}, {-0.05, 0.25, 0, 0.5}}
	clientErr := make(chan error, 2)
	for i := range vals {
		go func(id int) {
			clientErr <- runClient(clientOpts{
				addr: hub.Addr(), id: id, clients: 2, keyBits: 128, seed: 9,
				vals: vals[id],
			})
		}(i)
	}

	err = runServer(serverOpts{
		addr: hub.Addr(), clients: 2, keyBits: 128, seed: 9,
		journal: journal, failpoint: "aggregate",
	})
	if err == nil || !strings.Contains(err.Error(), "failpoint") {
		t.Fatalf("failpoint run returned %v", err)
	}
	mid := replayJournal(t, journal)
	if mid.Resume == nil || mid.Resume.Phase != fl.PhaseBroadcast {
		t.Fatalf("crash left no broadcast resume point: %+v", mid)
	}

	if err := runServer(serverOpts{
		addr: hub.Addr(), clients: 2, keyBits: 128, seed: 9,
		journal: journal, resume: true,
	}); err != nil {
		t.Fatalf("resume run failed: %v", err)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-clientErr:
			if err != nil {
				t.Fatalf("client failed after resume: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("clients never received the resumed broadcast")
		}
	}
	state := replayJournal(t, journal)
	if state.Completed != 1 || state.Resume != nil || state.Digests[demoRound] == 0 {
		t.Fatalf("resumed journal replayed wrong: %+v", state)
	}

	// Third incarnation: round already done, exit zero without dialing.
	if err := runServer(serverOpts{
		addr: "0.0.0.0:1", clients: 2, keyBits: 128, seed: 9,
		journal: journal, resume: true,
	}); err != nil {
		t.Fatalf("resume of a completed round must be a no-op: %v", err)
	}
}

func TestFlagValidation(t *testing.T) {
	// Inconsistent flag combinations must fail at startup with a typed
	// ConfigError naming the offending flag, not mid-round.
	cases := []struct {
		args []string
		flag string
	}{
		{[]string{"demo", "-clients", "0"}, "clients"},
		{[]string{"client", "-id", "7", "-clients", "4", "-values", "1"}, "id"},
		{[]string{"client", "-id", "-1", "-values", "1"}, "id"},
		{[]string{"demo", "-dim", "0"}, "dim"},
		{[]string{"server", "-clients", "4", "-cohort", "9"}, "cohort"},
		{[]string{"server", "-cohort", "-1"}, "cohort"},
		{[]string{"server", "-fanout", "1"}, "fanout"},
		{[]string{"server", "-fanout", "-2"}, "fanout"},
		{[]string{"demo", "-quorum", "-1"}, "quorum"},
		{[]string{"demo", "-clients", "4", "-quorum", "5"}, "quorum"},
		{[]string{"server", "-clients", "8", "-cohort", "3", "-quorum", "4"}, "quorum"},
		{[]string{"server", "-clients", "8", "-cohort", "2", "-groups", "3"}, "groups"},
		{[]string{"server", "-devices", "-1"}, "devices"},
		{[]string{"demo", "-devices", "65"}, "devices"},
	}
	for _, tc := range cases {
		err := run(tc.args, nil)
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("run(%v) = %v, want ConfigError on -%s", tc.args, err, tc.flag)
			continue
		}
		if ce.Flag != tc.flag {
			t.Errorf("run(%v) flagged -%s (%s), want -%s", tc.args, ce.Flag, ce.Reason, tc.flag)
		}
	}
	// A consistent combination must pass validation and fail later on the
	// unreachable address instead, proving the checks are not over-eager.
	err := run([]string{"client", "-clients", "8", "-cohort", "3", "-quorum", "3",
		"-values", "1", "-addr", "0.0.0.0:1"}, nil)
	var ce *ConfigError
	if err == nil || errors.As(err, &ce) {
		t.Fatalf("consistent flags returned %v, want a dial error", err)
	}
}

func TestDemoSampledTreeRound(t *testing.T) {
	// Cross-device demo: 3 of 5 clients are sampled and the server folds the
	// arriving uploads through a fan-out-2 tree. The unsampled clients must
	// still terminate on the broadcast.
	done := make(chan error, 1)
	go func() {
		done <- runDemo(demoOpts{clients: 5, dim: 4, keyBits: 128, seed: 9, cohort: 3, fanout: 2})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("sampled tree demo hung")
	}
}

func TestDemoDefendedTreeRound(t *testing.T) {
	// Tree aggregation composed with the group-wise defense: per-group trees
	// at the server, grouped robust decrypt at the clients.
	done := make(chan error, 1)
	go func() {
		done <- runDemo(demoOpts{
			clients: 4, dim: 4, keyBits: 128, seed: 9, fanout: 2,
			defense: fl.DefensePolicy{Groups: 2, Combiner: fl.CombineMedian},
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("defended tree demo hung")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, nil); err == nil {
		t.Fatal("no command should fail")
	}
	if err := run([]string{"nope"}, nil); err == nil {
		t.Fatal("unknown command should fail")
	}
	if err := run([]string{"client", "-values", ""}, nil); err == nil {
		t.Fatal("client without values should fail")
	}
	if err := run([]string{"demo", "-groups", "2", "-defense", "nope"}, nil); err == nil {
		t.Fatal("unknown -defense combiner should fail")
	}
	if err := run([]string{"client", "-values", "1", "-byz", "nope"}, nil); err == nil {
		t.Fatal("unknown -byz attack should fail")
	}
}
