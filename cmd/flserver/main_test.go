package main

import "testing"

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("0.1, -2.5,3")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, -2.5, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseFloats = %v", got)
		}
	}
	if _, err := parseFloats(""); err == nil {
		t.Fatal("empty should fail")
	}
	if _, err := parseFloats("a,b"); err == nil {
		t.Fatal("non-numeric should fail")
	}
}

func TestDemoEndToEnd(t *testing.T) {
	// Full hub + server + clients over loopback TCP with a small key.
	if err := runDemo(3, 4, 128, 9); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no command should fail")
	}
	if err := run([]string{"nope"}); err == nil {
		t.Fatal("unknown command should fail")
	}
	if err := run([]string{"client", "-values", ""}); err == nil {
		t.Fatal("client without values should fail")
	}
}
