package main

import (
	"fmt"

	"flbooster/internal/gpu"
)

// ConfigError reports a flag combination the protocol cannot run: the named
// flag's value is inconsistent with the rest of the configuration. It is
// returned before any key setup or dialing, so a misconfigured deployment
// fails at startup instead of stalling mid-round waiting for uploads that can
// never satisfy it.
type ConfigError struct {
	Flag   string // flag name without the leading dash, e.g. "quorum"
	Reason string
}

func (e *ConfigError) Error() string { return fmt.Sprintf("invalid -%s: %s", e.Flag, e.Reason) }

// badFlag builds a ConfigError with a formatted reason.
func badFlag(flag, format string, args ...interface{}) *ConfigError {
	return &ConfigError{Flag: flag, Reason: fmt.Sprintf(format, args...)}
}

// flagConfig is the cross-flag view validated at startup; run fills it from
// the parsed flag set before any command dispatches.
type flagConfig struct {
	cmd     string
	clients int
	id      int
	dim     int
	cohort  int
	fanout  int
	quorum  int
	groups  int
	devices int
}

// validate rejects inconsistent flag combinations — a quorum above the
// sampled cohort, more defense groups than sampled uploads, a fan-out no
// tree can have — with a typed ConfigError naming the offending flag.
func (c flagConfig) validate() error {
	if c.clients < 1 {
		return badFlag("clients", "need at least 1 client, have %d", c.clients)
	}
	if c.cmd == "client" && (c.id < 0 || c.id >= c.clients) {
		return badFlag("id", "client id %d outside [0, %d)", c.id, c.clients)
	}
	if c.cmd == "demo" && c.dim < 1 {
		return badFlag("dim", "gradient dimension must be at least 1, have %d", c.dim)
	}
	if c.cohort < 0 {
		return badFlag("cohort", "cohort size cannot be negative, have %d", c.cohort)
	}
	if c.cohort > c.clients {
		return badFlag("cohort", "cohort of %d exceeds the %d registered clients", c.cohort, c.clients)
	}
	if c.fanout < 0 || c.fanout == 1 {
		return badFlag("fanout", "aggregation fan-out must be at least 2 (or 0 for flat), have %d", c.fanout)
	}
	if c.devices < 0 {
		return badFlag("devices", "device count cannot be negative, have %d", c.devices)
	}
	if c.devices > gpu.MaxDevices {
		return badFlag("devices", "device count %d exceeds the %d-device set limit", c.devices, gpu.MaxDevices)
	}
	// Quorum and groups are judged against the uploads a round can actually
	// gather: the sampled cohort when -cohort is set, everyone otherwise.
	sampled := c.clients
	if c.cohort > 0 {
		sampled = c.cohort
	}
	if c.quorum < 0 {
		return badFlag("quorum", "quorum cannot be negative, have %d", c.quorum)
	}
	if c.quorum > sampled {
		return badFlag("quorum", "quorum %d exceeds the sampled cohort of %d uploads", c.quorum, sampled)
	}
	if c.groups > sampled {
		return badFlag("groups", "%d groups exceed the sampled cohort of %d uploads", c.groups, sampled)
	}
	return nil
}
