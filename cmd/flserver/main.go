// Command flserver runs a networked secure-aggregation demo over real TCP:
// a hub process routes ciphertexts between client processes and an
// aggregation server, exercising the Fig. 2 protocol end to end on the
// loopback (or a real LAN).
//
// Usage:
//
//	flserver hub    -addr 127.0.0.1:9009
//	flserver server -addr 127.0.0.1:9009 -clients 4
//	flserver client -addr 127.0.0.1:9009 -id 0 -values 0.1,0.2,0.3
//	flserver demo   -clients 4 -dim 8        (all roles in one process)
//
// Degraded modes (see DESIGN.md, "Fault model & degraded modes"):
//
//	-quorum k     server proceeds once k uploads arrive (0 = wait for all)
//	-timeout d    gather deadline; with -quorum the server drops stragglers
//	              still missing at expiry instead of stalling
//	-straggle d   client delays its upload by d (in demo mode: client 0),
//	              simulating a slow participant
//	-chunk n      streamed-pipeline chunk size in plaintexts: clients encrypt
//	              through the chunked double-buffered pipeline (0 = sequential)
//	-pool n       clients precompute n Paillier rⁿ noise terms offline before
//	              encrypting (the nonce pool, re-armed per batch); ciphertexts
//	              are bit-exact with the unpooled path (0 = off)
//	-devices n    every party shards its vector HE ops across n simulated
//	              devices with work stealing under device faults; results
//	              are bit-exact with the single-device engine (0 = off)
//	-trace file   write a Chrome trace-event JSON of the party's sim-time
//	              spans on exit, plus a metrics text dump to stdout (demo
//	              mode shares one trace across the in-process parties)
//
// Robustness (see DESIGN.md, "Byzantine-robust aggregation"):
//
//	-byz kind     arm the seeded demo adversary: the shared seed picks one
//	              compromised client whose upload is rewritten by the named
//	              attack (sign-flip, scale, noise, zero, collude) before
//	              encryption
//	-groups g     server aggregates group-wise: g seeded groups are HE-summed
//	              separately and broadcast as one grouped aggregate
//	-defense c    clients robust-combine the decrypted group means with this
//	              combiner (fedavg, trimmed-mean, median, norm-clip, krum;
//	              default trimmed-mean when -groups > 1)
//
// Cross-device scale (see DESIGN.md, "Cross-device scale"):
//
//	-cohort k     sample k of -clients for the round; every party derives
//	              the same cohort from -seed, and an unsampled client skips
//	              its upload but still receives the broadcast
//	-fanout f     server folds arriving uploads through a fan-out-f
//	              aggregation tree, bounding its live ciphertexts by the
//	              tree depth instead of the cohort size (0 = flat)
//
// Inconsistent flag combinations (quorum above the sampled cohort, more
// groups than sampled uploads, a fan-out of 1) fail at startup with a typed
// ConfigError naming the flag, not mid-round.
//
// Durability (see DESIGN.md, "Durable epochs"):
//
//	-journal f    server: append round state to a write-ahead journal file
//	-resume       server: replay -journal on startup and resume the round
//	              from the last safe boundary (or exit 0 if already done)
//	-failpoint s  server: crash at a named durable boundary (testing only;
//	              "aggregate" dies after the aggregate is journaled)
//
// The first SIGINT/SIGTERM starts a graceful drain: a server with quorum
// met finishes the round; below quorum it journals the abandoned round and
// exits zero. A second signal aborts hard with a nonzero status.
//
// All parties derive the same demo key pair from -seed; in production each
// deployment would provision keys through its own PKI.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"flbooster/internal/fl"
	"flbooster/internal/flnet"
	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
	"flbooster/internal/obs"
	"flbooster/internal/paillier"
)

// demoRound stamps every message of the single demo round so late traffic
// from a previous run is discarded rather than aggregated.
const demoRound = 1

func main() {
	// First SIGINT/SIGTERM starts the graceful drain; a second one means the
	// operator wants out now — a dirty stop, and the only path that exits
	// nonzero without an actual error.
	stop := make(chan struct{})
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		close(stop)
		<-sig
		fmt.Fprintln(os.Stderr, "flserver: second signal, aborting")
		os.Exit(1)
	}()
	if err := run(os.Args[1:], stop); err != nil {
		fmt.Fprintln(os.Stderr, "flserver:", err)
		os.Exit(1)
	}
}

func run(args []string, stop <-chan struct{}) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: flserver <hub|server|client|demo> [flags]")
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9009", "hub address")
	clients := fs.Int("clients", 4, "number of clients")
	id := fs.Int("id", 0, "client id")
	keyBits := fs.Int("bits", 256, "Paillier key size")
	seed := fs.Uint64("seed", 1, "shared demo seed")
	values := fs.String("values", "", "comma-separated gradient values")
	dim := fs.Int("dim", 8, "gradient dimension for demo mode")
	quorum := fs.Int("quorum", 0, "uploads needed to proceed (0 = all clients)")
	timeout := fs.Duration("timeout", 0, "gather deadline (0 = wait forever)")
	straggle := fs.Duration("straggle", 0, "delay this client's upload (demo: client 0)")
	chunk := fs.Int("chunk", 0, "streamed-pipeline chunk size in plaintexts (0 = sequential)")
	pool := fs.Int("pool", 0, "precomputed nonce-pool depth for encrypting parties (0 = off)")
	devices := fs.Int("devices", 0, "shard vector HE ops across this many simulated devices (0 = single device)")
	trace := fs.String("trace", "", "write Chrome trace-event JSON of sim-time spans to this file on exit")
	journal := fs.String("journal", "", "server: write-ahead round journal file (empty = no journal)")
	resume := fs.Bool("resume", false, "server: replay -journal and resume from the last safe boundary")
	failpoint := fs.String("failpoint", "", "server: crash at a named durable boundary (testing; e.g. \"aggregate\")")
	byz := fs.String("byz", "", "attack kind for the seeded demo adversary (empty = all honest)")
	groups := fs.Int("groups", 0, "secure-aggregation group count for the robust defense (0/1 = plain aggregate)")
	defense := fs.String("defense", "", "robust combiner over group means (default trimmed-mean when -groups > 1)")
	cohort := fs.Int("cohort", 0, "sample this many of -clients per round (0 = everyone; derived from -seed)")
	fanout := fs.Int("fanout", 0, "server: fold uploads through an aggregation tree of this fan-out (0 = flat)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if err := (flagConfig{
		cmd: cmd, clients: *clients, id: *id, dim: *dim,
		cohort: *cohort, fanout: *fanout, quorum: *quorum, groups: *groups,
		devices: *devices,
	}).validate(); err != nil {
		return err
	}

	// All parties must agree on the defense policy (the server groups, the
	// clients combine), so it is validated once up front.
	policy := fl.DefensePolicy{Groups: *groups, Combiner: fl.CombinerKind(*defense)}
	if err := policy.Validate(); err != nil {
		return err
	}
	attack := fl.AttackKind(*byz)
	if attack != fl.AttackNone {
		if err := (fl.AdversaryConfig{Seed: *seed, Kind: attack, Count: 1}).Validate(*clients); err != nil {
			return err
		}
	}

	var o *obs.Obs
	if *trace != "" {
		o = obs.New(*seed)
	}

	var err error
	switch cmd {
	case "hub":
		hub, herr := flnet.NewTCPHub(*addr, flnet.GigabitEthernet())
		if herr != nil {
			return herr
		}
		fmt.Println("hub listening on", hub.Addr())
		if stop == nil {
			select {} // route until killed
		}
		<-stop // route until the drain signal, then close cleanly
		return hub.Close()

	case "server":
		err = runServer(serverOpts{
			addr: *addr, clients: *clients, keyBits: *keyBits, seed: *seed,
			quorum: *quorum, timeout: *timeout, groups: *groups,
			cohort: *cohort, fanout: *fanout, devices: *devices,
			journal: *journal, resume: *resume, failpoint: *failpoint,
			stop: stop, o: o,
		})

	case "client":
		var vals []float64
		if vals, err = parseFloats(*values); err != nil {
			return err
		}
		err = runClient(clientOpts{
			addr: *addr, id: *id, clients: *clients, keyBits: *keyBits,
			chunk: *chunk, pool: *pool, devices: *devices,
			seed: *seed, vals: vals, delay: *straggle,
			cohort: *cohort, byz: attack, defense: policy, o: o,
		})

	case "demo":
		err = runDemo(demoOpts{
			clients: *clients, dim: *dim, keyBits: *keyBits, chunk: *chunk, pool: *pool,
			devices: *devices,
			seed:    *seed, quorum: *quorum, timeout: *timeout, straggle: *straggle,
			cohort: *cohort, fanout: *fanout,
			byz: attack, defense: policy, stop: stop, o: o,
		})

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		return err
	}
	return writeObs(o, *trace)
}

// writeObs dumps the bundle on exit: the span trace to path and the metrics
// registry to stdout. No-op when tracing is off.
func writeObs(o *obs.Obs, path string) error {
	if o == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.Recorder().WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d sim-time spans to %s\nmetrics:\n", o.Recorder().Len(), path)
	return o.Metrics().WriteText(os.Stdout)
}

// demoContext builds the shared HE context all demo parties derive from the
// seed. A positive chunk streams encryption through the chunked
// double-buffered pipeline, and devices ≥ 1 shards vector HE ops across a
// simulated device set; the ciphertexts are bit-exact either way. With
// an observability bundle the context traces and meters under the party's
// label (demo mode passes one bundle to every in-process party).
func demoContext(keyBits, clients, chunk, pool, devices int, seed uint64, o *obs.Obs, label string) (*fl.Context, error) {
	p := fl.NewProfile(fl.SystemFLBooster, keyBits, clients)
	p.Seed = seed
	p.Device = gpu.RTX3090()
	p.Chunk = chunk
	p.NoncePool = pool
	p.Devices = devices
	ctx, err := fl.NewContext(p)
	if err != nil {
		return nil, err
	}
	if o != nil {
		ctx.AttachObs(o, label)
	}
	return ctx, nil
}

// serverOpts bundles the aggregation server's configuration; the zero value
// of each optional field (journal, resume, failpoint, stop, o) disables it.
type serverOpts struct {
	addr    string
	clients int
	keyBits int
	seed    uint64
	// quorum and timeout select the degraded gather mode (see DESIGN.md).
	quorum  int
	timeout time.Duration
	// groups > 1 aggregates group-wise: the gathered uploads are split into
	// seeded groups, each HE-summed separately, and the grouped aggregate is
	// broadcast under the "gagg" kind for clients to robust-combine.
	groups int
	// cohort > 0 samples that many of the registered clients for the round
	// (the same seeded draw every party derives); fanout ≥ 2 folds arriving
	// uploads through an aggregation tree so the server's live ciphertexts
	// are bounded by the tree depth, not the cohort size.
	cohort int
	fanout int
	// devices ≥ 1 shards the server's aggregate-and-decrypt vector ops
	// across a simulated device set; 0 keeps the single-device engine.
	devices int
	// journal appends round state to this write-ahead file; resume replays
	// it on startup and picks the round up from the last safe boundary.
	journal string
	resume  bool
	// failpoint crashes the server at a named durable boundary ("aggregate"
	// dies right after the aggregate record is journaled). Testing only.
	failpoint string
	// stop is the graceful-drain signal (SIGINT/SIGTERM in main): with
	// quorum met the server finishes the round; below quorum it journals
	// the abandoned round and exits cleanly.
	stop <-chan struct{}
	o    *obs.Obs
}

func runServer(opts serverOpts) error {
	// The server only aggregates and decrypts whole batches, so it never
	// needs the streamed path or the encrypt-side nonce pool — chunk and
	// pool 0 regardless of the client flags. The device set does apply: the
	// aggregate-and-decrypt path shards like any other vector HE op.
	ctx, err := demoContext(opts.keyBits, opts.clients, 0, 0, opts.devices, opts.seed, opts.o, fl.ServerName)
	if err != nil {
		return err
	}
	defer ctx.PublishMetrics()
	names := make([]string, opts.clients)
	for i := range names {
		names[i] = fl.ClientName(i)
	}
	// The cohort is the same pure seeded draw every client derives, so no
	// scheduling message is needed: unsampled clients simply skip the upload.
	cohort := fl.SampleCohort(names, opts.cohort, opts.seed, demoRound)
	sampled := make(map[string]bool, len(cohort))
	for _, m := range cohort {
		sampled[m] = true
	}
	if len(cohort) < opts.clients {
		fmt.Printf("sampled cohort of %d/%d clients: %v\n", len(cohort), opts.clients, cohort)
	}
	quorum := opts.quorum
	if quorum <= 0 || quorum > len(cohort) {
		quorum = len(cohort)
	}

	var jr *fl.Journal
	attempt := uint32(1)
	var resumePt *fl.ResumePoint
	if opts.journal != "" {
		store, err := fl.OpenFileStore(opts.journal)
		if err != nil {
			return err
		}
		defer store.Close()
		if jr, err = fl.NewJournal(store); err != nil {
			return err
		}
		if opts.resume {
			recs, err := jr.Records()
			if err != nil {
				return err
			}
			state, err := fl.Replay(recs)
			if err != nil {
				return err
			}
			if state.Completed > 0 {
				fmt.Printf("journal %s: round %d already complete (digest %016x)\n",
					opts.journal, demoRound, state.Digests[demoRound])
				return nil
			}
			if rp := state.Resume; rp != nil {
				attempt = rp.Attempt + 1
				resumePt = rp
				fmt.Printf("journal %s: resuming round %d attempt %d at the %s boundary\n",
					opts.journal, rp.Round, attempt, rp.Phase)
			}
		}
	}

	conn, err := flnet.DialHub(opts.addr, fl.ServerName)
	if err != nil {
		return err
	}
	defer conn.Close()

	// The broadcast kind is a pure function of the (restart-stable) -groups
	// flag, so a resumed journaled aggregate replays under the same kind.
	kind := "agg"
	if opts.groups > 1 {
		kind = flnet.KindGroupAgg
	}

	if resumePt != nil && resumePt.Phase == fl.PhaseBroadcast {
		// The aggregate survived the crash (digest-checked by Replay):
		// replay it straight to the clients without re-gathering.
		return broadcastAggregate(conn, jr, attempt, kind, resumePt.Included, resumePt.Payload, opts.clients)
	}

	if jr != nil {
		rec := fl.JournalRecord{Kind: fl.EventRoundStart, Round: demoRound, Attempt: attempt, Members: names}
		if len(cohort) < len(names) {
			rec.Cohort = cohort
		}
		if err := jr.Append(rec); err != nil {
			return err
		}
	}
	fmt.Printf("server up: %d-bit key, waiting for %d clients (quorum %d)\n", opts.keyBits, len(cohort), quorum)

	// A receiver goroutine turns the blocking Recv into a channel so the
	// gather can select on the deadline and the drain signal without a
	// mid-frame timeout desyncing the stream; the deferred conn.Close
	// unblocks it on every exit path.
	type delivery struct {
		msg flnet.Message
		err error
	}
	msgs := make(chan delivery)
	recvDone := make(chan struct{})
	defer close(recvDone)
	go func() {
		for {
			msg, err := conn.Recv(fl.ServerName)
			select {
			case msgs <- delivery{msg, err}:
				if err != nil {
					return
				}
			case <-recvDone:
				return
			}
		}
	}()

	var deadlineC <-chan time.Time
	if opts.timeout > 0 {
		tm := time.NewTimer(opts.timeout)
		defer tm.Stop()
		deadlineC = tm.C
	}

	// With -fanout each arriving upload is folded into the aggregation
	// tree(s) immediately and its buffer dropped — batches then records only
	// who contributed (nil values) and the server's live ciphertexts are
	// bounded by the tree depth, not the cohort size. Group mode assigns the
	// cohort into seeded groups up front and gives each group its own tree.
	var tree *fl.AggTree
	var groupTrees []*fl.AggTree
	var groupCounts []int
	groupOf := map[string]int{}
	if opts.fanout >= 2 {
		if opts.groups > 1 {
			assignment := fl.AssignGroups(cohort, opts.groups, opts.seed, demoRound)
			groupTrees = make([]*fl.AggTree, len(assignment))
			groupCounts = make([]int, len(assignment))
			for g, members := range assignment {
				if groupTrees[g], err = ctx.NewAggTree(opts.fanout); err != nil {
					return err
				}
				for _, m := range members {
					groupOf[m] = g
				}
			}
		} else if tree, err = ctx.NewAggTree(opts.fanout); err != nil {
			return err
		}
	}

	batches := make(map[string][]paillier.Ciphertext, len(cohort))
	order := make([]string, 0, len(cohort))
	draining := false
gather:
	for len(batches) < len(cohort) {
		select {
		case d := <-msgs:
			if d.err != nil {
				return d.err
			}
			msg := d.msg
			if msg.Kind != "grads" || msg.Round != demoRound {
				fmt.Printf("discarding stale %q from %s (round %d)\n", msg.Kind, msg.From, msg.Round)
				continue
			}
			if !sampled[msg.From] {
				fmt.Printf("discarding upload from %s: not sampled this round\n", msg.From)
				continue
			}
			if _, dup := batches[msg.From]; dup {
				fmt.Printf("discarding duplicate upload from %s\n", msg.From)
				continue
			}
			nats, err := flnet.DecodeNats(msg.Payload)
			if err != nil {
				return err
			}
			cts := make([]paillier.Ciphertext, len(nats))
			for j, n := range nats {
				cts[j] = paillier.Ciphertext{C: n}
			}
			switch {
			case tree != nil:
				if err := tree.Add(cts); err != nil {
					return err
				}
				batches[msg.From] = nil
			case groupTrees != nil:
				g := groupOf[msg.From]
				if err := groupTrees[g].Add(cts); err != nil {
					return err
				}
				groupCounts[g]++
				batches[msg.From] = nil
			default:
				batches[msg.From] = cts
			}
			order = append(order, msg.From)
			fmt.Printf("received %d ciphertexts from %s (%d/%d)\n", len(cts), msg.From, len(batches), len(cohort))
		case <-deadlineC:
			break gather // deadline elapsed with the code below deciding quorum
		case <-opts.stop:
			draining = true
			break gather
		}
	}
	if draining && len(batches) < quorum {
		// Graceful drain below quorum: journal the abandoned round and exit
		// zero — a restart with -resume re-runs the round from the top.
		fmt.Printf("drain signal with %d/%d uploads (quorum %d): abandoning the round\n",
			len(batches), len(cohort), quorum)
		if jr != nil {
			rec := fl.JournalRecord{
				Kind: fl.EventDrained, Round: demoRound, Attempt: attempt,
				Phase: fl.PhaseGather, Reason: "drained below quorum",
			}
			if err := jr.Append(rec); err != nil {
				return err
			}
		}
		return nil
	}
	if len(batches) < quorum {
		return fmt.Errorf("gather deadline with %d/%d uploads, below quorum %d", len(batches), len(cohort), quorum)
	}
	if draining {
		fmt.Println("drain signal with quorum met: finishing the round before exit")
	}
	for _, name := range cohort {
		if _, ok := batches[name]; !ok {
			fmt.Printf("dropping straggler %s (missed the gather deadline)\n", name)
		}
	}

	var raw []byte
	switch {
	case groupTrees != nil:
		// Tree × defense: each group's tree already holds its members' sum.
		// A group emptied by dropped stragglers is skipped rather than
		// framed at size zero (the decryptors divide by the group size).
		sizes := make([]int, 0, len(groupTrees))
		blobs := make([][]byte, 0, len(groupTrees))
		for g, gt := range groupTrees {
			if groupCounts[g] == 0 {
				continue
			}
			root, err := gt.Root()
			if err != nil {
				return err
			}
			nats := make([]mpint.Nat, len(root))
			for i, c := range root {
				nats[i] = c.C
			}
			sizes = append(sizes, groupCounts[g])
			blobs = append(blobs, flnet.EncodeNats(nats))
		}
		if raw, err = flnet.EncodeGroupAgg(sizes, blobs); err != nil {
			return err
		}
		fmt.Printf("tree group-wise aggregation: %d uploads across %d groups %v\n", len(order), len(sizes), sizes)
	case tree != nil:
		root, err := tree.Root()
		if err != nil {
			return err
		}
		nats := make([]mpint.Nat, len(root))
		for i, c := range root {
			nats[i] = c.C
		}
		raw = flnet.EncodeNats(nats)
		stats := tree.Stats()
		fmt.Printf("tree aggregation: %d uploads folded at depth %d (peak %d live ciphertexts)\n",
			len(order), stats.Depth, stats.PeakLiveCts)
	case opts.groups > 1:
		// Group-wise aggregation: the contributors are dealt into seeded
		// groups (same pure assignment the clients can re-derive), each group
		// HE-summed on its own, and the per-group sums framed together so the
		// decryptors can robust-combine the group means.
		assignment := fl.AssignGroups(order, opts.groups, opts.seed, demoRound)
		sizes := make([]int, len(assignment))
		blobs := make([][]byte, len(assignment))
		for g, members := range assignment {
			grouped := make([][]paillier.Ciphertext, len(members))
			for i, name := range members {
				grouped[i] = batches[name]
			}
			agg, err := ctx.AggregateCiphertexts(grouped)
			if err != nil {
				return err
			}
			nats := make([]mpint.Nat, len(agg))
			for i, c := range agg {
				nats[i] = c.C
			}
			sizes[g] = len(members)
			blobs[g] = flnet.EncodeNats(nats)
		}
		if raw, err = flnet.EncodeGroupAgg(sizes, blobs); err != nil {
			return err
		}
		fmt.Printf("group-wise aggregation: %d uploads dealt into %d groups %v\n", len(order), len(sizes), sizes)
	default:
		ordered := make([][]paillier.Ciphertext, 0, len(order))
		for _, name := range order {
			ordered = append(ordered, batches[name])
		}
		agg, err := ctx.AggregateCiphertexts(ordered)
		if err != nil {
			return err
		}
		nats := make([]mpint.Nat, len(agg))
		for i, c := range agg {
			nats[i] = c.C
		}
		raw = flnet.EncodeNats(nats)
	}
	if jr != nil {
		rec := fl.JournalRecord{
			Kind: fl.EventAggregated, Round: demoRound, Attempt: attempt,
			Members: order, Digest: fl.PayloadDigest(raw), Payload: raw,
		}
		if err := jr.Append(rec); err != nil {
			return err
		}
	}
	if opts.failpoint == "aggregate" {
		return fmt.Errorf("failpoint %q: crashing after the aggregate was journaled", opts.failpoint)
	}
	return broadcastAggregate(conn, jr, attempt, kind, order, raw, opts.clients)
}

// broadcastAggregate prefixes the encoded aggregate with the contributor
// count K (so clients can remove the K-party quantization bias and rescale
// to N/K), sends it to every client — stragglers included, so a late
// participant still terminates — and journals the round done.
func broadcastAggregate(conn *flnet.TCPClient, jr *fl.Journal, attempt uint32, kind string, included []string, raw []byte, clients int) error {
	payload := make([]byte, 4, 4+len(raw))
	binary.LittleEndian.PutUint32(payload, uint32(len(included)))
	payload = append(payload, raw...)
	for i := 0; i < clients; i++ {
		msg := flnet.Message{From: fl.ServerName, To: fl.ClientName(i), Kind: kind, Round: demoRound, Payload: payload}
		if err := conn.Send(msg); err != nil {
			return err
		}
	}
	if jr != nil {
		rec := fl.JournalRecord{
			Kind: fl.EventRoundDone, Round: demoRound, Attempt: attempt,
			Members: included, Digest: fl.PayloadDigest(raw),
		}
		if err := jr.Append(rec); err != nil {
			return err
		}
	}
	fmt.Printf("aggregated %d/%d uploads and broadcast the %d-byte aggregate\n", len(included), clients, len(payload))
	return nil
}

// clientOpts bundles a demo client's configuration; zero values of byz,
// defense, delay, and o disable the corresponding behavior.
type clientOpts struct {
	addr    string
	id      int
	clients int
	keyBits int
	chunk   int
	// pool precomputes this many rⁿ noise terms offline before the upload's
	// encryption (re-armed per batch); 0 keeps the online nonce path.
	pool int
	// devices ≥ 1 shards the client's encrypt path across a simulated
	// device set; 0 keeps the single-device engine.
	devices int
	seed    uint64
	vals    []float64
	delay   time.Duration
	// cohort mirrors the server's -cohort flag: the client derives the same
	// seeded draw and, when unsampled, skips its upload but still waits for
	// the broadcast so every party terminates with the round's aggregate.
	cohort int
	// byz arms the seeded demo adversary: when the shared seed selects this
	// client as compromised, its upload is rewritten by the named attack
	// before encryption. Every party derives the same cohort from the seed.
	byz fl.AttackKind
	// defense mirrors the server's -groups flag: with Groups > 1 the client
	// expects a grouped aggregate and robust-combines the group means.
	defense fl.DefensePolicy
	o       *obs.Obs
}

// inCohort reports whether the named client is in the round's sampled
// cohort — the same pure seeded draw the server makes, so the parties agree
// without any scheduling message.
func inCohort(name string, clients, cohort int, seed uint64) bool {
	if cohort <= 0 || cohort >= clients {
		return true
	}
	names := make([]string, clients)
	for i := range names {
		names[i] = fl.ClientName(i)
	}
	for _, m := range fl.SampleCohort(names, cohort, seed, demoRound) {
		if m == name {
			return true
		}
	}
	return false
}

func runClient(opts clientOpts) error {
	name := fl.ClientName(opts.id)
	clients := opts.clients
	ctx, err := demoContext(opts.keyBits, clients, opts.chunk, opts.pool, opts.devices, opts.seed, opts.o, name)
	if err != nil {
		return err
	}
	defer ctx.PublishMetrics()
	conn, err := flnet.DialHub(opts.addr, name)
	if err != nil {
		return err
	}
	defer conn.Close()

	if !inCohort(name, clients, opts.cohort, opts.seed) {
		fmt.Printf("%s not sampled this round: skipping upload, awaiting the broadcast\n", name)
	} else {
		vals := opts.vals
		if opts.byz != fl.AttackNone {
			adv, err := fl.NewAdversary(fl.AdversaryConfig{Seed: opts.seed ^ 0xad3, Kind: opts.byz, Count: 1}, clients)
			if err != nil {
				return err
			}
			if adv.IsMalicious(opts.id) {
				fmt.Printf("%s is compromised: applying the %s attack to its upload\n", name, opts.byz)
			}
			vals = adv.Apply(demoRound, opts.id, vals)
		}

		cts, err := ctx.EncryptGradients(vals)
		if err != nil {
			return err
		}
		nats := make([]mpint.Nat, len(cts))
		for i, c := range cts {
			nats[i] = c.C
		}
		if opts.delay > 0 {
			fmt.Printf("%s straggling for %v before upload\n", name, opts.delay)
			time.Sleep(opts.delay)
		}
		if err := conn.Send(flnet.Message{From: name, To: fl.ServerName, Kind: "grads", Round: demoRound, Payload: flnet.EncodeNats(nats)}); err != nil {
			return err
		}
		fmt.Printf("%s sent %d ciphertexts (%d gradients)\n", name, len(cts), len(vals))
	}

	msg, err := conn.Recv(name)
	if err != nil {
		return err
	}
	wantKind := "agg"
	if opts.defense.Enabled() {
		wantKind = flnet.KindGroupAgg
	}
	if msg.Kind != wantKind {
		return fmt.Errorf("%s: aggregate kind %q, want %q (server and clients must agree on -groups)", name, msg.Kind, wantKind)
	}
	if len(msg.Payload) < 4 {
		return fmt.Errorf("%s: aggregate payload too short", name)
	}
	k := int(binary.LittleEndian.Uint32(msg.Payload[:4]))
	if k < 1 || k > clients {
		return fmt.Errorf("%s: implausible contributor count %d", name, k)
	}
	if opts.defense.Enabled() {
		return decryptGrouped(ctx, name, msg.Payload[4:], len(opts.vals), k, clients, opts.defense)
	}
	aggNats, err := flnet.DecodeNats(msg.Payload[4:])
	if err != nil {
		return err
	}
	aggCts := make([]paillier.Ciphertext, len(aggNats))
	for i, n := range aggNats {
		aggCts[i] = paillier.Ciphertext{C: n}
	}
	sums, err := ctx.DecryptAggregated(aggCts, len(opts.vals), k)
	if err != nil {
		return err
	}
	if k < clients {
		// Quorum aggregate: rescale the K-party sum to a full-federation
		// estimate, mirroring internal/fl's round runtime.
		scale := float64(clients) / float64(k)
		for i := range sums {
			sums[i] *= scale
		}
		fmt.Printf("%s decrypted %d-of-%d aggregate (scaled x%.2f): %v\n", name, k, clients, scale, sums)
		return nil
	}
	fmt.Printf("%s decrypted aggregate: %v\n", name, sums)
	return nil
}

// decryptGrouped decodes a grouped aggregate, decrypts each group's sum at
// its own contributor count, reduces the sums to group means, and
// robust-combines them — the same defended-decrypt path internal/fl runs,
// over the demo's TCP framing. The result is scaled back to a
// full-federation sum like the plain path.
func decryptGrouped(ctx *fl.Context, name string, raw []byte, dim, k, clients int, policy fl.DefensePolicy) error {
	sizes, blobs, err := flnet.DecodeGroupAgg(raw)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	total := 0
	groups := make([]fl.GroupUpdate, len(blobs))
	for g, blob := range blobs {
		gnats, err := flnet.DecodeNats(blob)
		if err != nil {
			return fmt.Errorf("%s: group %d: %w", name, g, err)
		}
		cts := make([]paillier.Ciphertext, len(gnats))
		for i, n := range gnats {
			cts[i] = paillier.Ciphertext{C: n}
		}
		mean, err := ctx.DecryptAggregated(cts, dim, sizes[g])
		if err != nil {
			return fmt.Errorf("%s: group %d: %w", name, g, err)
		}
		for i := range mean {
			mean[i] /= float64(sizes[g])
		}
		groups[g] = fl.GroupUpdate{Mean: mean, Size: sizes[g]}
		total += sizes[g]
	}
	if total != k {
		return fmt.Errorf("%s: group sizes sum to %d, header says %d contributors", name, total, k)
	}
	agg, err := policy.NewAggregator()
	if err != nil {
		return err
	}
	combined, stats, err := agg.Combine(groups)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	for i := range combined {
		combined[i] *= float64(clients)
	}
	fmt.Printf("%s decrypted defended aggregate (%s over %d groups, %d coords trimmed, %d clipped, %d dropped): %v\n",
		name, agg.Name(), len(groups), stats.TrimmedCoords, stats.Clipped, stats.GroupsDropped, combined)
	return nil
}

// demoOpts bundles the all-in-one demo's configuration.
type demoOpts struct {
	clients  int
	dim      int
	keyBits  int
	chunk    int
	pool     int
	devices  int
	seed     uint64
	quorum   int
	timeout  time.Duration
	straggle time.Duration
	// cohort and fanout select cross-device mode: a seeded sub-population
	// cohort and hierarchical tree aggregation at the server.
	cohort int
	fanout int
	// byz and defense arm the adversary and the group-wise robust decrypt;
	// every in-process party shares them the way real deployments would
	// share the flags.
	byz     fl.AttackKind
	defense fl.DefensePolicy
	stop    <-chan struct{}
	o       *obs.Obs
}

// runDemo runs hub, server, and clients in one process over loopback TCP.
// With straggle > 0, client 0 delays its upload; combined with -quorum and
// -timeout this demonstrates the round completing without it.
func runDemo(opts demoOpts) error {
	hub, err := flnet.NewTCPHub("127.0.0.1:0", flnet.GigabitEthernet())
	if err != nil {
		return err
	}
	defer hub.Close()
	fmt.Println("demo hub on", hub.Addr())

	clients := opts.clients
	errs := make(chan error, clients+1)
	go func() {
		errs <- runServer(serverOpts{
			addr: hub.Addr(), clients: clients, keyBits: opts.keyBits, seed: opts.seed,
			quorum: opts.quorum, timeout: opts.timeout, groups: opts.defense.Groups,
			cohort: opts.cohort, fanout: opts.fanout, devices: opts.devices,
			stop: opts.stop, o: opts.o,
		})
	}()

	rng := mpint.NewRNG(opts.seed)
	want := make([]float64, opts.dim)
	for c := 0; c < clients; c++ {
		vals := make([]float64, opts.dim)
		for i := range vals {
			vals[i] = rng.Float64()*0.5 - 0.25
			want[i] += vals[i]
		}
		delay := time.Duration(0)
		if c == 0 {
			delay = opts.straggle
		}
		go func(id int, vals []float64, delay time.Duration) {
			errs <- runClient(clientOpts{
				addr: hub.Addr(), id: id, clients: clients, keyBits: opts.keyBits,
				chunk: opts.chunk, pool: opts.pool, devices: opts.devices,
				seed: opts.seed, vals: vals, delay: delay,
				cohort: opts.cohort, byz: opts.byz, defense: opts.defense, o: opts.o,
			})
		}(c, vals, delay)
	}
	for i := 0; i < clients+1; i++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	fmt.Printf("expected full-federation sums (all honest): %v\n", want)
	bytes, msgs, _ := hub.Meter().Snapshot()
	fmt.Printf("hub traffic: %d bytes across %d messages\n", bytes, msgs)
	if opts.o != nil {
		hub.Meter().Publish(opts.o.Metrics(), "net.hub")
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, fmt.Errorf("no -values given")
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("value %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}
