// Command flserver runs a networked secure-aggregation demo over real TCP:
// a hub process routes ciphertexts between client processes and an
// aggregation server, exercising the Fig. 2 protocol end to end on the
// loopback (or a real LAN).
//
// Usage:
//
//	flserver hub    -addr 127.0.0.1:9009
//	flserver server -addr 127.0.0.1:9009 -clients 4
//	flserver client -addr 127.0.0.1:9009 -id 0 -values 0.1,0.2,0.3
//	flserver demo   -clients 4 -dim 8        (all roles in one process)
//
// Degraded modes (see DESIGN.md, "Fault model & degraded modes"):
//
//	-quorum k     server proceeds once k uploads arrive (0 = wait for all)
//	-timeout d    gather deadline; with -quorum the server drops stragglers
//	              still missing at expiry instead of stalling
//	-straggle d   client delays its upload by d (in demo mode: client 0),
//	              simulating a slow participant
//	-chunk n      streamed-pipeline chunk size in plaintexts: clients encrypt
//	              through the chunked double-buffered pipeline (0 = sequential)
//	-trace file   write a Chrome trace-event JSON of the party's sim-time
//	              spans on exit, plus a metrics text dump to stdout (demo
//	              mode shares one trace across the in-process parties)
//
// All parties derive the same demo key pair from -seed; in production each
// deployment would provision keys through its own PKI.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"flbooster/internal/fl"
	"flbooster/internal/flnet"
	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
	"flbooster/internal/obs"
	"flbooster/internal/paillier"
)

// demoRound stamps every message of the single demo round so late traffic
// from a previous run is discarded rather than aggregated.
const demoRound = 1

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: flserver <hub|server|client|demo> [flags]")
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9009", "hub address")
	clients := fs.Int("clients", 4, "number of clients")
	id := fs.Int("id", 0, "client id")
	keyBits := fs.Int("bits", 256, "Paillier key size")
	seed := fs.Uint64("seed", 1, "shared demo seed")
	values := fs.String("values", "", "comma-separated gradient values")
	dim := fs.Int("dim", 8, "gradient dimension for demo mode")
	quorum := fs.Int("quorum", 0, "uploads needed to proceed (0 = all clients)")
	timeout := fs.Duration("timeout", 0, "gather deadline (0 = wait forever)")
	straggle := fs.Duration("straggle", 0, "delay this client's upload (demo: client 0)")
	chunk := fs.Int("chunk", 0, "streamed-pipeline chunk size in plaintexts (0 = sequential)")
	trace := fs.String("trace", "", "write Chrome trace-event JSON of sim-time spans to this file on exit")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	var o *obs.Obs
	if *trace != "" {
		o = obs.New(*seed)
	}

	var err error
	switch cmd {
	case "hub":
		hub, herr := flnet.NewTCPHub(*addr, flnet.GigabitEthernet())
		if herr != nil {
			return herr
		}
		fmt.Println("hub listening on", hub.Addr())
		select {} // route until killed

	case "server":
		err = runServer(*addr, *clients, *keyBits, *seed, *quorum, *timeout, o)

	case "client":
		var vals []float64
		if vals, err = parseFloats(*values); err != nil {
			return err
		}
		err = runClient(*addr, *id, *clients, *keyBits, *chunk, *seed, vals, *straggle, o)

	case "demo":
		err = runDemo(*clients, *dim, *keyBits, *chunk, *seed, *quorum, *timeout, *straggle, o)

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		return err
	}
	return writeObs(o, *trace)
}

// writeObs dumps the bundle on exit: the span trace to path and the metrics
// registry to stdout. No-op when tracing is off.
func writeObs(o *obs.Obs, path string) error {
	if o == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.Recorder().WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d sim-time spans to %s\nmetrics:\n", o.Recorder().Len(), path)
	return o.Metrics().WriteText(os.Stdout)
}

// demoContext builds the shared HE context all demo parties derive from the
// seed. A positive chunk streams encryption through the chunked
// double-buffered pipeline; the ciphertexts are bit-exact either way. With
// an observability bundle the context traces and meters under the party's
// label (demo mode passes one bundle to every in-process party).
func demoContext(keyBits, clients, chunk int, seed uint64, o *obs.Obs, label string) (*fl.Context, error) {
	p := fl.NewProfile(fl.SystemFLBooster, keyBits, clients)
	p.Seed = seed
	p.Device = gpu.RTX3090()
	p.Chunk = chunk
	ctx, err := fl.NewContext(p)
	if err != nil {
		return nil, err
	}
	if o != nil {
		ctx.AttachObs(o, label)
	}
	return ctx, nil
}

func runServer(addr string, clients, keyBits int, seed uint64, quorum int, timeout time.Duration, o *obs.Obs) error {
	// The server only aggregates and decrypts whole batches, so it never
	// needs the streamed path — chunk 0 regardless of the client flag.
	ctx, err := demoContext(keyBits, clients, 0, seed, o, fl.ServerName)
	if err != nil {
		return err
	}
	defer ctx.PublishMetrics()
	if quorum <= 0 || quorum > clients {
		quorum = clients
	}
	conn, err := flnet.DialHub(addr, fl.ServerName)
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Printf("server up: %d-bit key, waiting for %d clients (quorum %d)\n", keyBits, clients, quorum)

	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	batches := make(map[string][]paillier.Ciphertext, clients)
	order := make([]string, 0, clients)
	for len(batches) < clients {
		var remaining time.Duration
		if !deadline.IsZero() {
			if remaining = time.Until(deadline); remaining <= 0 {
				break // deadline elapsed with the loop below deciding quorum
			}
		}
		msg, err := conn.RecvTimeout(fl.ServerName, remaining)
		if err != nil {
			if flnet.IsTimeout(err) {
				break
			}
			return err
		}
		if msg.Kind != "grads" || msg.Round != demoRound {
			fmt.Printf("discarding stale %q from %s (round %d)\n", msg.Kind, msg.From, msg.Round)
			continue
		}
		if _, dup := batches[msg.From]; dup {
			fmt.Printf("discarding duplicate upload from %s\n", msg.From)
			continue
		}
		nats, err := flnet.DecodeNats(msg.Payload)
		if err != nil {
			return err
		}
		cts := make([]paillier.Ciphertext, len(nats))
		for j, n := range nats {
			cts[j] = paillier.Ciphertext{C: n}
		}
		batches[msg.From] = cts
		order = append(order, msg.From)
		fmt.Printf("received %d ciphertexts from %s (%d/%d)\n", len(cts), msg.From, len(batches), clients)
	}
	if len(batches) < quorum {
		return fmt.Errorf("gather deadline with %d/%d uploads, below quorum %d", len(batches), clients, quorum)
	}
	for i := 0; i < clients; i++ {
		if _, ok := batches[fl.ClientName(i)]; !ok {
			fmt.Printf("dropping straggler %s (missed the gather deadline)\n", fl.ClientName(i))
		}
	}

	ordered := make([][]paillier.Ciphertext, 0, len(order))
	for _, name := range order {
		ordered = append(ordered, batches[name])
	}
	agg, err := ctx.AggregateCiphertexts(ordered)
	if err != nil {
		return err
	}
	// The aggregate is prefixed with the contributor count K so clients can
	// remove the quantization bias for K parties and rescale to N/K.
	nats := make([]mpint.Nat, len(agg))
	for i, c := range agg {
		nats[i] = c.C
	}
	payload := make([]byte, 4, 4+len(nats)*8)
	binary.LittleEndian.PutUint32(payload, uint32(len(order)))
	payload = append(payload, flnet.EncodeNats(nats)...)
	// Broadcast to every client — stragglers included, so a late participant
	// still terminates instead of waiting forever for an aggregate.
	for i := 0; i < clients; i++ {
		msg := flnet.Message{From: fl.ServerName, To: fl.ClientName(i), Kind: "agg", Round: demoRound, Payload: payload}
		if err := conn.Send(msg); err != nil {
			return err
		}
	}
	fmt.Printf("aggregated %d/%d uploads and broadcast %d ciphertexts\n", len(order), clients, len(agg))
	return nil
}

func runClient(addr string, id, clients, keyBits, chunk int, seed uint64, vals []float64, delay time.Duration, o *obs.Obs) error {
	name := fl.ClientName(id)
	ctx, err := demoContext(keyBits, clients, chunk, seed, o, name)
	if err != nil {
		return err
	}
	defer ctx.PublishMetrics()
	conn, err := flnet.DialHub(addr, name)
	if err != nil {
		return err
	}
	defer conn.Close()

	cts, err := ctx.EncryptGradients(vals)
	if err != nil {
		return err
	}
	nats := make([]mpint.Nat, len(cts))
	for i, c := range cts {
		nats[i] = c.C
	}
	if delay > 0 {
		fmt.Printf("%s straggling for %v before upload\n", name, delay)
		time.Sleep(delay)
	}
	if err := conn.Send(flnet.Message{From: name, To: fl.ServerName, Kind: "grads", Round: demoRound, Payload: flnet.EncodeNats(nats)}); err != nil {
		return err
	}
	fmt.Printf("%s sent %d ciphertexts (%d gradients)\n", name, len(cts), len(vals))

	msg, err := conn.Recv(name)
	if err != nil {
		return err
	}
	if len(msg.Payload) < 4 {
		return fmt.Errorf("%s: aggregate payload too short", name)
	}
	k := int(binary.LittleEndian.Uint32(msg.Payload[:4]))
	if k < 1 || k > clients {
		return fmt.Errorf("%s: implausible contributor count %d", name, k)
	}
	aggNats, err := flnet.DecodeNats(msg.Payload[4:])
	if err != nil {
		return err
	}
	aggCts := make([]paillier.Ciphertext, len(aggNats))
	for i, n := range aggNats {
		aggCts[i] = paillier.Ciphertext{C: n}
	}
	sums, err := ctx.DecryptAggregated(aggCts, len(vals), k)
	if err != nil {
		return err
	}
	if k < clients {
		// Quorum aggregate: rescale the K-party sum to a full-federation
		// estimate, mirroring internal/fl's round runtime.
		scale := float64(clients) / float64(k)
		for i := range sums {
			sums[i] *= scale
		}
		fmt.Printf("%s decrypted %d-of-%d aggregate (scaled x%.2f): %v\n", name, k, clients, scale, sums)
		return nil
	}
	fmt.Printf("%s decrypted aggregate: %v\n", name, sums)
	return nil
}

// runDemo runs hub, server, and clients in one process over loopback TCP.
// With straggle > 0, client 0 delays its upload; combined with -quorum and
// -timeout this demonstrates the round completing without it.
func runDemo(clients, dim, keyBits, chunk int, seed uint64, quorum int, timeout, straggle time.Duration, o *obs.Obs) error {
	hub, err := flnet.NewTCPHub("127.0.0.1:0", flnet.GigabitEthernet())
	if err != nil {
		return err
	}
	defer hub.Close()
	fmt.Println("demo hub on", hub.Addr())

	errs := make(chan error, clients+1)
	go func() { errs <- runServer(hub.Addr(), clients, keyBits, seed, quorum, timeout, o) }()

	rng := mpint.NewRNG(seed)
	want := make([]float64, dim)
	for c := 0; c < clients; c++ {
		vals := make([]float64, dim)
		for i := range vals {
			vals[i] = rng.Float64()*0.5 - 0.25
			want[i] += vals[i]
		}
		delay := time.Duration(0)
		if c == 0 {
			delay = straggle
		}
		go func(id int, vals []float64, delay time.Duration) {
			errs <- runClient(hub.Addr(), id, clients, keyBits, chunk, seed, vals, delay, o)
		}(c, vals, delay)
	}
	for i := 0; i < clients+1; i++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	fmt.Printf("expected full-federation sums: %v\n", want)
	bytes, msgs, _ := hub.Meter().Snapshot()
	fmt.Printf("hub traffic: %d bytes across %d messages\n", bytes, msgs)
	if o != nil {
		hub.Meter().Publish(o.Metrics(), "net.hub")
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, fmt.Errorf("no -values given")
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("value %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}
