// Command flserver runs a networked secure-aggregation demo over real TCP:
// a hub process routes ciphertexts between client processes and an
// aggregation server, exercising the Fig. 2 protocol end to end on the
// loopback (or a real LAN).
//
// Usage:
//
//	flserver hub    -addr 127.0.0.1:9009
//	flserver server -addr 127.0.0.1:9009 -clients 4
//	flserver client -addr 127.0.0.1:9009 -id 0 -values 0.1,0.2,0.3
//	flserver demo   -clients 4 -dim 8        (all roles in one process)
//
// All parties derive the same demo key pair from -seed; in production each
// deployment would provision keys through its own PKI.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"flbooster/internal/fl"
	"flbooster/internal/flnet"
	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
	"flbooster/internal/paillier"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: flserver <hub|server|client|demo> [flags]")
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9009", "hub address")
	clients := fs.Int("clients", 4, "number of clients")
	id := fs.Int("id", 0, "client id")
	keyBits := fs.Int("bits", 256, "Paillier key size")
	seed := fs.Uint64("seed", 1, "shared demo seed")
	values := fs.String("values", "", "comma-separated gradient values")
	dim := fs.Int("dim", 8, "gradient dimension for demo mode")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	switch cmd {
	case "hub":
		hub, err := flnet.NewTCPHub(*addr, flnet.GigabitEthernet())
		if err != nil {
			return err
		}
		fmt.Println("hub listening on", hub.Addr())
		select {} // route until killed

	case "server":
		return runServer(*addr, *clients, *keyBits, *seed)

	case "client":
		vals, err := parseFloats(*values)
		if err != nil {
			return err
		}
		return runClient(*addr, *id, *clients, *keyBits, *seed, vals)

	case "demo":
		return runDemo(*clients, *dim, *keyBits, *seed)

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// demoContext builds the shared HE context all demo parties derive from the
// seed.
func demoContext(keyBits, clients int, seed uint64) (*fl.Context, error) {
	p := fl.NewProfile(fl.SystemFLBooster, keyBits, clients)
	p.Seed = seed
	p.Device = gpu.RTX3090()
	return fl.NewContext(p)
}

func runServer(addr string, clients, keyBits int, seed uint64) error {
	ctx, err := demoContext(keyBits, clients, seed)
	if err != nil {
		return err
	}
	conn, err := flnet.DialHub(addr, fl.ServerName)
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Printf("server up: %d-bit key, waiting for %d clients\n", keyBits, clients)

	batches := make([][]paillier.Ciphertext, 0, clients)
	for i := 0; i < clients; i++ {
		msg, err := conn.Recv(fl.ServerName)
		if err != nil {
			return err
		}
		nats, err := flnet.DecodeNats(msg.Payload)
		if err != nil {
			return err
		}
		cts := make([]paillier.Ciphertext, len(nats))
		for j, n := range nats {
			cts[j] = paillier.Ciphertext{C: n}
		}
		batches = append(batches, cts)
		fmt.Printf("received %d ciphertexts from %s\n", len(cts), msg.From)
	}
	agg, err := ctx.AggregateCiphertexts(batches)
	if err != nil {
		return err
	}
	nats := make([]mpint.Nat, len(agg))
	for i, c := range agg {
		nats[i] = c.C
	}
	payload := flnet.EncodeNats(nats)
	for i := 0; i < clients; i++ {
		msg := flnet.Message{From: fl.ServerName, To: fl.ClientName(i), Kind: "agg", Payload: payload}
		if err := conn.Send(msg); err != nil {
			return err
		}
	}
	fmt.Printf("aggregated and broadcast %d ciphertexts\n", len(agg))
	return nil
}

func runClient(addr string, id, clients, keyBits int, seed uint64, vals []float64) error {
	ctx, err := demoContext(keyBits, clients, seed)
	if err != nil {
		return err
	}
	name := fl.ClientName(id)
	conn, err := flnet.DialHub(addr, name)
	if err != nil {
		return err
	}
	defer conn.Close()

	cts, err := ctx.EncryptGradients(vals)
	if err != nil {
		return err
	}
	nats := make([]mpint.Nat, len(cts))
	for i, c := range cts {
		nats[i] = c.C
	}
	if err := conn.Send(flnet.Message{From: name, To: fl.ServerName, Kind: "grads", Payload: flnet.EncodeNats(nats)}); err != nil {
		return err
	}
	fmt.Printf("%s sent %d ciphertexts (%d gradients)\n", name, len(cts), len(vals))

	msg, err := conn.Recv(name)
	if err != nil {
		return err
	}
	aggNats, err := flnet.DecodeNats(msg.Payload)
	if err != nil {
		return err
	}
	aggCts := make([]paillier.Ciphertext, len(aggNats))
	for i, n := range aggNats {
		aggCts[i] = paillier.Ciphertext{C: n}
	}
	sums, err := ctx.DecryptAggregated(aggCts, len(vals), clients)
	if err != nil {
		return err
	}
	fmt.Printf("%s decrypted aggregate: %v\n", name, sums)
	return nil
}

// runDemo runs hub, server, and clients in one process over loopback TCP.
func runDemo(clients, dim, keyBits int, seed uint64) error {
	hub, err := flnet.NewTCPHub("127.0.0.1:0", flnet.GigabitEthernet())
	if err != nil {
		return err
	}
	defer hub.Close()
	fmt.Println("demo hub on", hub.Addr())

	errs := make(chan error, clients+1)
	go func() { errs <- runServer(hub.Addr(), clients, keyBits, seed) }()

	rng := mpint.NewRNG(seed)
	want := make([]float64, dim)
	for c := 0; c < clients; c++ {
		vals := make([]float64, dim)
		for i := range vals {
			vals[i] = rng.Float64()*0.5 - 0.25
			want[i] += vals[i]
		}
		go func(id int, vals []float64) { errs <- runClient(hub.Addr(), id, clients, keyBits, seed, vals) }(c, vals)
	}
	for i := 0; i < clients+1; i++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	fmt.Printf("expected sums: %v\n", want)
	bytes, msgs, _ := hub.Meter().Snapshot()
	fmt.Printf("hub traffic: %d bytes across %d messages\n", bytes, msgs)
	return nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, fmt.Errorf("no -values given")
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("value %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}
