package main

import "testing"

func TestRunFlagAndArgErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no experiment should fail")
	}
	if err := run([]string{"unknown-exp"}); err == nil {
		t.Fatal("unknown experiment should fail")
	}
	if err := run([]string{"-keys", "abc", "fig7"}); err == nil {
		t.Fatal("bad -keys should fail")
	}
	if err := run([]string{"-scale", "5", "fig7"}); err == nil {
		t.Fatal("out-of-range scale should fail")
	}
}

func TestRunFig7Micro(t *testing.T) {
	// The cheapest real experiment at micro scale exercises the full
	// dispatch path.
	err := run([]string{"-scale", "0.0002", "-keys", "128", "-epochs", "1", "-batch", "16", "fig7"})
	if err != nil {
		t.Fatal(err)
	}
}
