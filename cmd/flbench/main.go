// Command flbench regenerates every table and figure of the FLBooster
// paper's evaluation section. Each experiment prints rows in the paper's
// layout, measured at a configurable dataset scale and key-size sweep.
//
// Usage:
//
//	flbench [flags] <experiment>...
//
// Experiments: fig1 table3 table4 fig6 table5 fig7 table6 fig8 table7
// ablation resilience devfault pipeline heopt byz scale round devset soak all
//
// Flags:
//
//	-scale f      dataset scale factor in (0, 1]        (default 0.0008)
//	-keys list    comma-separated key sizes in bits     (default 256,512,1024)
//	-parties n    number of federated participants      (default 4)
//	-epochs n     epochs for convergence experiments    (default 4)
//	-batch n      SGD minibatch size                    (default 64)
//	-seed n       PRNG seed for workloads, chaos, and fault injection (default 1)
//	-chunk n      streamed-pipeline chunk size in plaintexts (default 0 = sequential)
//	-devices n    shard vector HE ops across n simulated devices
//	              (default 0 = classic single-device engine)
//	-trace file   write a Chrome trace-event JSON of the run's sim-time spans
//	              (load in Perfetto / chrome://tracing)
//	-metrics file write the metrics registry as text ("-" = stdout)
//	-paper        use the paper's full-scale parameters (slow)
//
// Either observability flag turns tracing/metrics on; after every experiment
// the harness reconciles the mirrored metric counters against the run's
// CostSnapshot and fails on drift.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"flbooster/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flbench", flag.ContinueOnError)
	scale := fs.Float64("scale", 0, "dataset scale factor in (0, 1]")
	keys := fs.String("keys", "", "comma-separated key sizes in bits")
	parties := fs.Int("parties", 0, "number of federated participants")
	epochs := fs.Int("epochs", 0, "epochs for convergence experiments")
	batch := fs.Int("batch", 0, "SGD minibatch size")
	seed := fs.Uint64("seed", 1, "PRNG seed for workloads, chaos, and fault injection")
	chunk := fs.Int("chunk", 0, "streamed-pipeline chunk size in plaintexts (0 = sequential)")
	devices := fs.Int("devices", 0, "shard vector HE ops across this many simulated devices (0 = single device)")
	trace := fs.String("trace", "", "write Chrome trace-event JSON of sim-time spans to this file")
	metrics := fs.String("metrics", "", "write the metrics registry as text to this file (\"-\" = stdout)")
	paper := fs.Bool("paper", false, "use the paper's full-scale parameters")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := bench.Quick()
	if *paper {
		cfg = bench.Paper()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *keys != "" {
		cfg.KeyBits = nil
		for _, part := range strings.Split(*keys, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("invalid -keys element %q: %w", part, err)
			}
			cfg.KeyBits = append(cfg.KeyBits, k)
		}
	}
	if *parties > 0 {
		cfg.Parties = *parties
	}
	if *epochs > 0 {
		cfg.Epochs = *epochs
	}
	if *batch > 0 {
		cfg.BatchSize = *batch
	}
	// The seed threads through every workload generator, the network chaos
	// layer, and the device fault injector, so a -seed value reproduces a
	// resilience run exactly (same faults, same retries, same fallbacks).
	cfg.Seed = *seed
	// A positive -chunk streams every upload through the chunked
	// encrypt→send pipeline; the aggregates stay bit-exact either way.
	cfg.Chunk = *chunk
	// A -devices value of 1 or more routes every vector HE op through a
	// gpu.DeviceSet shard scheduler; out-of-range values fail Validate with
	// a typed bench.ConfigError naming the field.
	cfg.Devices = *devices
	cfg.Observe = *trace != "" || *metrics != ""

	exps := fs.Args()
	if len(exps) == 0 {
		return fmt.Errorf("no experiment named; choose from table2 fig1 table3 table4 fig6 table5 fig7 table6 fig8 table7 ablation resilience devfault pipeline heopt byz scale round devset soak all")
	}
	r, err := bench.NewRunner(cfg)
	if err != nil {
		return err
	}
	for _, e := range exps {
		var err error
		switch e {
		case "table2":
			err = r.Table2(os.Stdout)
		case "fig1":
			err = r.Fig1(os.Stdout)
		case "table3":
			err = r.Table3(os.Stdout)
		case "table4":
			err = r.Table4(os.Stdout)
		case "fig6":
			err = r.Fig6(os.Stdout)
		case "table5":
			err = r.Table5(os.Stdout)
		case "fig7":
			err = r.Fig7(os.Stdout)
		case "table6":
			err = r.Table6(os.Stdout)
		case "fig8":
			err = r.Fig8(os.Stdout)
		case "table7":
			err = r.Table7(os.Stdout)
		case "ablation":
			err = r.Ablation(os.Stdout)
		case "resilience":
			err = r.Resilience(os.Stdout)
		case "devfault":
			err = r.DeviceFaults(os.Stdout)
		case "pipeline":
			err = r.Pipeline(os.Stdout)
		case "heopt":
			err = r.HEOpt(os.Stdout)
		case "byz":
			err = r.Byz(os.Stdout)
		case "scale":
			// The cross-device sweep sizes its own client counts (10²→10⁵);
			// -parties keeps meaning the cross-silo party count elsewhere.
			err = r.Scale(os.Stdout, nil)
		case "round":
			// The round-anatomy experiment runs at the sweep's largest key:
			// the speedup floor is defined at production (≥2048-bit) keys.
			err = r.Round(os.Stdout)
		case "devset":
			// The multi-device sweep picks its own device counts (1→8, plus
			// -devices when set); like round it runs at the largest key size.
			err = r.Devset(os.Stdout, nil)
		case "soak":
			err = r.Soak(os.Stdout)
		case "all":
			err = r.All(os.Stdout)
		default:
			err = fmt.Errorf("unknown experiment %q", e)
		}
		if err != nil {
			return err
		}
		// Every experiment must leave the metrics mirror and the cost
		// snapshot in exact agreement; drift is a bug, not noise.
		if err := r.ReconcileObs(); err != nil {
			return fmt.Errorf("after %s: %w", e, err)
		}
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			return err
		}
		if err := r.Obs().Recorder().WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d sim-time spans to %s\n", r.Obs().Recorder().Len(), *trace)
	}
	if *metrics != "" {
		out := os.Stdout
		if *metrics != "-" {
			f, err := os.Create(*metrics)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := r.Obs().Metrics().WriteText(out); err != nil {
			return err
		}
	}
	return nil
}
