// Quickstart: an encrypted federated mean in ~40 lines.
//
// Four parties each hold a private gradient vector. Every party encrypts
// its vector under a shared Paillier key (quantized and batch-compressed by
// FLBooster's pipeline), the server sums the ciphertexts homomorphically,
// and the parties decrypt the aggregate — the server never sees a plaintext
// gradient.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"flbooster"
)

func main() {
	// An FLBooster context: 256-bit Paillier key (demo size), 4 parties,
	// GPU-HE and batch compression on.
	ctx, err := flbooster.NewContext(flbooster.NewProfile(flbooster.SystemFLBooster, 256, 4))
	if err != nil {
		log.Fatal(err)
	}
	fed := flbooster.NewFederation(ctx)
	defer fed.Close()

	// Each party's private local gradients.
	grads := [][]float64{
		{0.12, -0.34, 0.56, -0.78},
		{0.21, 0.43, -0.65, 0.87},
		{-0.11, 0.22, -0.33, 0.44},
		{0.05, -0.10, 0.15, -0.20},
	}

	sum, err := fed.SecureAggregate(grads)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("encrypted federated sum:", round4(sum))
	want := make([]float64, 4)
	for _, g := range grads {
		for i, v := range g {
			want[i] += v
		}
	}
	fmt.Println("plaintext ground truth :", round4(want))

	c := ctx.Costs.Snapshot()
	fmt.Printf("ciphertexts on the wire: %d (for %d values — %.0fx compression)\n",
		c.Ciphertexts, c.Plainvals, c.CompressionRatio())
	fmt.Printf("traffic: %d bytes in %d messages\n", c.CommBytes, c.CommMsgs)
}

func round4(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(int(x*1e4+copysign(0.5, x))) / 1e4
	}
	return out
}

func copysign(mag, sign float64) float64 {
	if sign < 0 {
		return -mag
	}
	return mag
}
