// Text categorization (RCV1-style) with horizontally federated logistic
// regression — the paper's Homo LR workload.
//
// Four news desks each hold their own labelled documents over a shared
// vocabulary. They jointly train one classifier; only encrypted gradients
// ever leave a desk. The example trains the same model under the FATE
// baseline and under FLBooster and reports the modelled epoch-time gap.
//
//	go run ./examples/textcat
package main

import (
	"fmt"
	"log"

	"flbooster"
	"flbooster/internal/datasets"
	"flbooster/internal/models"
)

func main() {
	// An RCV1-shaped corpus, scaled to run in seconds.
	ds, err := datasets.Generate(datasets.RCV1Spec.Scaled(0.0008), 7)
	if err != nil {
		log.Fatal(err)
	}
	st := ds.Stats()
	fmt.Printf("corpus: %d docs × %d terms (avg %.0f terms/doc, %.0f%% positive)\n",
		st.Instances, st.Features, st.AvgNNZ, st.Positives*100)

	opts := models.DefaultOptions()
	opts.BatchSize = 64

	for _, sys := range []flbooster.System{flbooster.SystemFATE, flbooster.SystemFLBooster} {
		ctx, err := flbooster.NewContext(flbooster.NewProfile(sys, 256, 4))
		if err != nil {
			log.Fatal(err)
		}
		m, err := models.NewHomoLR(ctx, ds, opts)
		if err != nil {
			log.Fatal(err)
		}
		var loss float64
		for epoch := 1; epoch <= 3; epoch++ {
			if loss, err = m.TrainEpoch(); err != nil {
				log.Fatal(err)
			}
		}
		acc := models.Accuracy(m.Weights, m.Bias, ds)
		c := ctx.Costs.Snapshot()
		fmt.Printf("\n[%s]\n", sys)
		fmt.Printf("  final loss        : %.4f (accuracy %.1f%%)\n", loss, acc*100)
		fmt.Printf("  modelled time     : %v (HE %v, comm %v)\n",
			c.TotalSim(), c.HESim, c.CommSim)
		fmt.Printf("  HE operations     : %d for %d gradient values\n", c.HEOps, c.Instances)
		fmt.Printf("  wire traffic      : %.1f MB\n", float64(c.CommBytes)/1e6)
		if err := m.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
