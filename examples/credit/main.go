// Credit scoring with SecureBoost (Hetero SBT) — gradient-boosted trees
// over vertically partitioned data.
//
// A bank (guest, holds default labels and account features) and partner
// institutions (hosts with bureau/telecom features about the same
// customers) grow a boosted-tree scorecard. The guest's per-sample
// gradients travel only as ciphertexts; hosts return encrypted split
// histograms. With batch compression, each sample's (gradient, hessian)
// pair shares one ciphertext — the SecureBoost+ packing.
//
//	go run ./examples/credit
package main

import (
	"fmt"
	"log"

	"flbooster"
	"flbooster/internal/datasets"
	"flbooster/internal/models"
)

func main() {
	spec := datasets.Spec{Name: "credit", Instances: 400, Features: 36, AvgActive: 18}
	ds, err := datasets.Generate(spec, 23)
	if err != nil {
		log.Fatal(err)
	}
	st := ds.Stats()
	fmt.Printf("portfolio: %d customers × %d features (%.0f%% defaults)\n",
		st.Instances, st.Features, st.Positives*100)

	opts := models.DefaultOptions()
	opts.BatchSize = 128

	for _, sys := range []flbooster.System{flbooster.SystemNoBC, flbooster.SystemFLBooster} {
		ctx, err := flbooster.NewContext(flbooster.NewProfile(sys, 256, 4))
		if err != nil {
			log.Fatal(err)
		}
		m, err := models.NewHeteroSBT(ctx, ds, opts)
		if err != nil {
			log.Fatal(err)
		}
		m.Eta = 0.5 // faster shrinkage for the short demo
		fmt.Printf("\n[%s] boosting 4 rounds:\n", sys)
		var loss float64
		for round := 1; round <= 4; round++ {
			if loss, err = m.TrainEpoch(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  tree %d: ensemble loss %.4f\n", round, loss)
		}
		c := ctx.Costs.Snapshot()
		fmt.Printf("  ciphertexts: %d for %d (g,h) values — %.1fx packing\n",
			c.Ciphertexts, c.Plainvals, c.CompressionRatio())
		fmt.Printf("  modelled time %v | traffic %.1f MB\n", c.TotalSim(), float64(c.CommBytes)/1e6)
		if err := m.Close(); err != nil {
			log.Fatal(err)
		}
	}
}
