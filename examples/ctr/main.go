// Click-through-rate prediction (Avazu-style) with vertically federated
// logistic regression — the paper's Hetero LR workload.
//
// An ad exchange (guest, holds the click labels and its own features) and
// three data partners (hosts, each holding a disjoint feature slice about
// the same users) jointly train a CTR model. Partial scores, residuals, and
// gradients are exchanged only under Paillier encryption through an
// arbiter.
//
//	go run ./examples/ctr
package main

import (
	"fmt"
	"log"

	"flbooster"
	"flbooster/internal/datasets"
	"flbooster/internal/models"
)

func main() {
	ds, err := datasets.Generate(datasets.AvazuSpec.Scaled(0.0002), 11)
	if err != nil {
		log.Fatal(err)
	}
	st := ds.Stats()
	fmt.Printf("impressions: %d × %d one-hot features (avg %.0f active, CTR-like positives %.0f%%)\n",
		st.Instances, st.Features, st.AvgNNZ, st.Positives*100)

	ctx, err := flbooster.NewContext(flbooster.NewProfile(flbooster.SystemFLBooster, 256, 4))
	if err != nil {
		log.Fatal(err)
	}
	opts := models.DefaultOptions()
	opts.BatchSize = 64

	m, err := models.NewHeteroLR(ctx, ds, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	fmt.Println("\ntraining vertically federated CTR model (1 guest + 3 hosts + arbiter):")
	for epoch := 1; epoch <= 2; epoch++ {
		loss, err := m.TrainEpoch()
		if err != nil {
			log.Fatal(err)
		}
		c := ctx.Costs.Snapshot()
		fmt.Printf("  epoch %d: loss %.4f | modelled time %v | %d HE ops | %.1f MB traffic\n",
			epoch, loss, c.TotalSim(), c.HEOps, float64(c.CommBytes)/1e6)
	}

	c := ctx.Costs.Snapshot()
	fmt.Printf("\nbatch compression packed %d values into %d ciphertexts (%.1fx)\n",
		c.Plainvals, c.Ciphertexts, c.CompressionRatio())
	fmt.Printf("GPU SM utilization: %.1f%%\n", ctx.Utilization()*100)
}
