// Vertically federated neural network (Hetero NN) with an HE-protected
// interactive layer.
//
// A hospital (guest, holds diagnoses and its clinical features) and partner
// labs (hosts with test panels for the same patients) train a two-tower
// network: each party's bottom tower embeds its features into a shared
// hidden space; the towers merge under encryption at the interactive layer;
// the guest's top model predicts the outcome.
//
//	go run ./examples/verticalnn
package main

import (
	"fmt"
	"log"

	"flbooster"
	"flbooster/internal/datasets"
	"flbooster/internal/models"
)

func main() {
	spec := datasets.Spec{Name: "clinical", Instances: 200, Features: 24, AvgActive: 24, Dense: true}
	ds, err := datasets.Generate(spec, 31)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cohort: %d patients × %d measurements\n", ds.Len(), ds.NumFeatures)

	ctx, err := flbooster.NewContext(flbooster.NewProfile(flbooster.SystemFLBooster, 256, 2))
	if err != nil {
		log.Fatal(err)
	}
	opts := models.DefaultOptions()
	opts.BatchSize = 50
	opts.LearningRate = 0.1
	opts.Parties = 2

	const hidden = 4
	enc, err := models.NewHeteroNN(ctx, ds, hidden, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer enc.Close()
	oracle, err := models.NewHeteroNN(nil, ds, hidden, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntwo-tower network, %d hidden units, encrypted interactive layer:\n", hidden)
	var lossE, lossO float64
	for epoch := 1; epoch <= 3; epoch++ {
		if lossE, err = enc.TrainEpoch(); err != nil {
			log.Fatal(err)
		}
		if lossO, err = oracle.TrainEpoch(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  epoch %d: encrypted loss %.4f | plaintext oracle %.4f\n", epoch, lossE, lossO)
	}
	fmt.Printf("\nconvergence bias (Eq. 15): %.2f%%\n", models.ConvergenceBias(lossO, lossE)*100)
	c := ctx.Costs.Snapshot()
	fmt.Printf("HE ops %d | modelled time %v | traffic %.1f MB\n",
		c.HEOps, c.TotalSim(), float64(c.CommBytes)/1e6)
}
