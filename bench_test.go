// Package-level benchmarks: one testing.B target per table and figure of
// the paper's evaluation, each delegating to the experiment harness at a
// micro scale so `go test -bench .` completes quickly. Use cmd/flbench for
// full experiment runs and EXPERIMENTS.md for recorded results.
package flbooster

import (
	"io"
	"testing"

	"flbooster/internal/bench"
)

// microConfig shrinks every experiment to benchmark-loop size.
func microConfig() bench.Config {
	cfg := bench.Quick()
	cfg.Scale = 0.0002
	cfg.KeyBits = []int{128}
	cfg.Epochs = 2
	cfg.BatchSize = 32
	return cfg
}

func benchExperiment(b *testing.B, fn func(*bench.Runner, io.Writer) error) {
	b.Helper()
	r, err := bench.NewRunner(microConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(r, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Stats(b *testing.B) {
	benchExperiment(b, (*bench.Runner).Table2)
}

func BenchmarkFig1EpochBreakdown(b *testing.B) {
	benchExperiment(b, (*bench.Runner).Fig1)
}

func BenchmarkTable3EpochTime(b *testing.B) {
	benchExperiment(b, (*bench.Runner).Table3)
}

func BenchmarkTable4Throughput(b *testing.B) {
	benchExperiment(b, (*bench.Runner).Table4)
}

func BenchmarkFig6Utilization(b *testing.B) {
	benchExperiment(b, (*bench.Runner).Fig6)
}

func BenchmarkTable5Ablation(b *testing.B) {
	benchExperiment(b, (*bench.Runner).Table5)
}

func BenchmarkFig7Compression(b *testing.B) {
	benchExperiment(b, (*bench.Runner).Fig7)
}

func BenchmarkTable6Components(b *testing.B) {
	benchExperiment(b, (*bench.Runner).Table6)
}

func BenchmarkFig8Convergence(b *testing.B) {
	benchExperiment(b, (*bench.Runner).Fig8)
}

func BenchmarkTable7Bias(b *testing.B) {
	benchExperiment(b, (*bench.Runner).Table7)
}
