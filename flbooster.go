// Package flbooster is a from-scratch Go reproduction of "FLBooster: A
// Unified and Efficient Platform for Federated Learning Acceleration"
// (Zeng et al., ICDE 2023).
//
// FLBooster attacks the two bottlenecks of HE-protected federated learning
// simultaneously: the computation cost of Paillier homomorphic encryption,
// lowered onto a (simulated) GPU as data-parallel kernels with a
// fine-grained resource manager, and the communication cost of ciphertext
// expansion, cut by a secure encoding-quantization scheme plus batch
// compression that packs ⌊k/(r+b)⌋ gradients into every k-bit plaintext.
//
// The top-level package re-exports the pieces a downstream user needs:
//
//	plat := flbooster.NewPlatform(seed)       // Table-I vector/HE APIs
//	prof := flbooster.NewProfile(flbooster.SystemFLBooster, 1024, 4)
//	ctx, _ := flbooster.NewContext(prof)       // accelerated HE context
//	fed := flbooster.NewFederation(ctx)        // Fig. 2 secure aggregation
//
// The four benchmark models (Homo LR, Hetero LR, Hetero SBT, Hetero NN)
// live in internal/models and are driven through the experiment harness
// (cmd/flbench) and the examples/ directory. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for the paper-vs-measured record.
package flbooster

import (
	"flbooster/internal/core"
	"flbooster/internal/fl"
	"flbooster/internal/ghe"
	"flbooster/internal/gpu"
)

// System re-exports the evaluated system identifiers.
type System = fl.System

// The acceleration configurations compared throughout the paper.
const (
	SystemFATE      = fl.SystemFATE
	SystemHAFLO     = fl.SystemHAFLO
	SystemFLBooster = fl.SystemFLBooster
	SystemNoGHE     = fl.SystemNoGHE
	SystemNoBC      = fl.SystemNoBC
)

// Profile re-exports the acceleration profile.
type Profile = fl.Profile

// Context re-exports the accelerated HE context.
type Context = fl.Context

// Federation re-exports the Fig. 2 secure-aggregation runner.
type Federation = fl.Federation

// RoundPolicy re-exports the fault-tolerance knobs (quorum, phase deadline,
// retry/backoff) set on Profile.Round; the zero value is strict
// wait-for-all. See DESIGN.md §6.
type RoundPolicy = fl.RoundPolicy

// RoundReport re-exports the per-round resilience accounting returned by
// Federation.SecureAggregateReport.
type RoundReport = fl.RoundReport

// RoundError re-exports the typed round failure naming phase and party.
type RoundError = fl.RoundError

// RoundPhase re-exports the protocol phase labels used in reports and
// errors.
type RoundPhase = fl.RoundPhase

// The Fig. 2 protocol phases a RoundReport or RoundError can name.
const (
	PhaseUpload    = fl.PhaseUpload
	PhaseGather    = fl.PhaseGather
	PhaseBroadcast = fl.PhaseBroadcast
	PhaseDecrypt   = fl.PhaseDecrypt
)

// FaultPolicy re-exports the GPU-HE resilience knobs set on Profile.Faults:
// device fault injection plus the checked-execution policy (retries,
// verification, CPU fallback). The zero value injects nothing. See
// DESIGN.md §7.
type FaultPolicy = fl.FaultPolicy

// FaultConfig re-exports the seeded device fault injector's configuration
// (FaultPolicy.Inject).
type FaultConfig = gpu.FaultConfig

// CheckedConfig re-exports the checked-execution policy
// (FaultPolicy.Check): retry budget, backoff, verification sampling.
type CheckedConfig = ghe.CheckedConfig

// FaultReport re-exports the fault/retry/fallback counters returned by
// Context.FaultReport.
type FaultReport = fl.FaultReport

// Platform re-exports the Table-I API surface.
type Platform = core.Platform

// NewProfile returns the standard configuration of a system at the given
// key size and party count.
func NewProfile(sys System, keyBits, parties int) Profile {
	return fl.NewProfile(sys, keyBits, parties)
}

// NewContext instantiates a profile: key pair, HE backend, quantizer,
// packer, and device.
func NewContext(p Profile) (*Context, error) { return fl.NewContext(p) }

// NewFederation wires a context to an in-process transport for
// secure-aggregation rounds.
func NewFederation(ctx *Context) *Federation { return fl.NewFederation(ctx) }

// NewPlatform creates a Table-I API platform on the modelled RTX 3090.
func NewPlatform(seed uint64) *Platform { return core.Default(seed) }

// NewPlatformOn creates a platform on a custom device configuration.
func NewPlatformOn(cfg gpu.Config, seed uint64) (*Platform, error) {
	return core.New(cfg, seed)
}

// RTX3090 re-exports the paper's evaluation GPU model.
func RTX3090() gpu.Config { return gpu.RTX3090() }
